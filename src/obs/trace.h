// Scoped tracing: RAII spans, hierarchical per-thread nesting, Chrome export.
//
// A Trace is a per-run collector of timed spans. Instrumented code opens a
// TraceSpan at the top of a phase; the span measures wall time from
// construction to destruction and records itself into the active trace.
// When no trace is active — the normal case — a span is two relaxed atomic
// loads and nothing else, so instrumentation can stay compiled into release
// builds (the ISSUE-4 overhead budget is < 2% with obs disabled).
//
// Nesting is per thread: each thread keeps its own span stack (depth), so
// spans opened inside ThreadPool::ParallelFor workers nest correctly under
// whatever that worker is running, and two workers never share a stack.
// Thread ids are small stable indices in registration order, which makes
// the Chrome chrome://tracing export readable (one lane per worker).
//
// Everything here is informational: span timings are never hashed, never
// compared by tests for equality, and never feed a decision (DESIGN.md §10).
// The collector is thread-safe; the GL_GUARDED_BY annotations carry the
// PR-3 compile-time race-safety contract.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gl::obs {

struct TraceEvent {
  static constexpr std::int64_t kNoArg =
      std::numeric_limits<std::int64_t>::min();

  const char* name = "";  // must have static storage duration (a literal)
  int tid = 0;            // stable per-trace thread index
  int depth = 0;          // nesting depth on that thread when opened
  double start_us = 0.0;  // relative to the trace epoch
  double dur_us = 0.0;
  // CPU time the owning thread spent inside the span; -1 when unknown
  // (e.g. a re-parsed trace written before this field existed). On an
  // oversubscribed machine dur_us includes timesliced-out periods; cpu_us
  // is the span's inherent work and is what the critical path charges.
  double cpu_us = -1.0;
  // True for one lane of a data-parallel batch (e.g. a fixed-grain chunk
  // dispatched to a pool): adjacent same-name lane siblings are parallel
  // alternatives even when the machine serialized them, so the profiler
  // clusters them instead of charging the whole batch as a serial chain.
  // Only set when the batch really had parallel capacity — a chunk loop
  // run inline at threads=1 records plain spans.
  bool parallel_lane = false;
  std::int64_t arg = kNoArg;  // optional numeric annotation (level, size...)
};

// Per-run span collector. Create one, Activate() it for the duration of the
// run, and export. At most one trace is active per process at a time; a
// TraceSpan opened while none is active is a no-op. The Trace must outlive
// every span opened while it was active.
class Trace {
 public:
  Trace();
  ~Trace();
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Installs this trace as the process-wide active collector. Aborts if
  // another trace is already active (traces do not nest).
  void Activate();
  // Uninstalls (no-op if this trace is not the active one).
  void Deactivate();
  [[nodiscard]] static Trace* Active();

  // Thread-safe; called by ~TraceSpan.
  void Record(const TraceEvent& ev);
  // Stable small index for the calling thread, assigned on first use.
  [[nodiscard]] int RegisterThread();
  // Monotonic identity of this collector (survives address reuse).
  [[nodiscard]] std::uint64_t id() const { return id_; }
  // Microseconds since this trace was constructed.
  [[nodiscard]] double NowRelUs() const;

  // Snapshot of recorded events, sorted by (tid, start_us).
  [[nodiscard]] std::vector<TraceEvent> Events() const;

  // Flat per-phase aggregation over all recorded spans.
  struct PhaseStat {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;  // inclusive (children counted in parents)
    double max_ms = 0.0;
  };
  // Sorted by name.
  [[nodiscard]] std::vector<PhaseStat> Summary() const;

  // chrome://tracing JSON ("X" complete events, ts/dur in microseconds).
  // Returns false (with a message on stderr) if the file cannot be written.
  bool WriteChromeJson(const std::string& path) const;

 private:
  const std::uint64_t id_;
  const std::int64_t t0_us_;

  mutable Mutex mu_;
  std::vector<TraceEvent> events_ GL_GUARDED_BY(mu_);
  int next_tid_ GL_GUARDED_BY(mu_) = 0;
};

// RAII span. Opens on the active trace (no-op when none); closes and
// records on destruction. Must be destroyed on the thread that created it.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     std::int64_t arg = TraceEvent::kNoArg,
                     bool parallel_lane = false);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Trace* trace_;  // nullptr when no trace was active at construction
  const char* name_;
  std::int64_t arg_;
  int tid_ = 0;
  int depth_ = 0;
  bool parallel_lane_ = false;
  double start_us_ = 0.0;
  std::int64_t start_cpu_us_ = 0;
};

}  // namespace gl::obs
