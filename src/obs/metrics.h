// Typed metrics registry: Counter / Gauge / Histogram handles.
//
// Two classes of metric, and the distinction is the whole point
// (DESIGN.md §10):
//
//   kDeterministic  — counts of *decisions*: cut edges evaluated, bisection
//                     rejections, PEE-cap rejections, servers gated,
//                     migrations planned/coalesced, auditor findings. Two
//                     same-seed runs must produce identical totals, so these
//                     may be diffed by the replay gate and asserted on by
//                     tests.
//   kInformational  — anything timing- or environment-dependent. May be
//                     printed and logged, must never be hashed or compared
//                     for equality.
//
// Handles are cheap atomics; the intended call-site pattern caches the
// handle in a function-local static so the name lookup happens once:
//
//   static obs::Counter& edges = obs::MetricsRegistry::Global().GetCounter(
//       "partition.cut_edges_evaluated", obs::MetricKind::kDeterministic);
//   edges.Add(batch);
//
// Hot loops should accumulate into a local and Add() once per call —
// counters are relaxed atomics, safe under ParallelFor, and addition is
// commutative so totals stay deterministic regardless of thread schedule.
// Per-epoch *deltas* attribute correctly only when epochs run serially
// (parallel RunMany interleaves experiments; totals remain exact).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gl::obs {

enum class MetricKind {
  kDeterministic,   // replay-stable decision counts
  kInformational,   // timings etc.; never hashed, never diffed
};

[[nodiscard]] const char* MetricKindName(MetricKind kind);

// Monotonic event count.
class Counter {
 public:
  Counter(std::string name, MetricKind kind)
      : name_(std::move(name)), kind_(kind) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MetricKind kind() const { return kind_; }

 private:
  const std::string name_;
  const MetricKind kind_;
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge(std::string name, MetricKind kind)
      : name_(std::move(name)), kind_(kind) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { Set(0.0); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MetricKind kind() const { return kind_; }

 private:
  const std::string name_;
  const MetricKind kind_;
  std::atomic<double> value_{0.0};
};

// Fixed geometric-bucket histogram for positive-ish samples (latencies,
// sizes). Buckets double: bucket i covers [2^(i+kMinExp), 2^(i+1+kMinExp));
// values at or below 2^kMinExp land in bucket 0, values beyond the top
// bucket are clamped into it (exact min/max are tracked separately, so
// Quantile(0) and Quantile(1) stay exact).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr int kMinExp = -20;  // ~1e-6: finer than a microsecond

  Histogram(std::string name, MetricKind kind)
      : name_(std::move(name)), kind_(kind) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const;  // 0 when empty
  [[nodiscard]] double max() const;  // 0 when empty

  // Interpolated quantile estimate. q is clamped to [0, 1]; q==0 returns
  // the exact min, q==1 the exact max, and an empty histogram returns 0.
  [[nodiscard]] double Quantile(double q) const;

  void Reset();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] MetricKind kind() const { return kind_; }

 private:
  static int BucketIndex(double v);
  [[nodiscard]] static double BucketLower(int i);
  [[nodiscard]] static double BucketUpper(int i);

  const std::string name_;
  const MetricKind kind_;
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
};

// Process-wide registry (plus instantiable for tests). Metric creation is
// mutex-guarded and idempotent: the first GetX for a name fixes its kind;
// later calls must agree (checked). Handle pointers are stable for the
// registry's lifetime, so call sites may cache references.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, MetricKind kind);
  Gauge& GetGauge(std::string_view name, MetricKind kind);
  Histogram& GetHistogram(std::string_view name, MetricKind kind);

  // Name-sorted snapshot of every counter of the given kind. The sort makes
  // the serialized stream canonical: two same-seed runs must produce
  // byte-identical deterministic-counter snapshots.
  [[nodiscard]] std::vector<CounterValue> SnapshotCounters(
      MetricKind kind) const;
  [[nodiscard]] std::vector<GaugeValue> SnapshotGauges(MetricKind kind) const;

  // Element-wise `now - before` over a prior snapshot (names absent from
  // `before` diff against zero). Used by RunLogger for per-epoch deltas.
  [[nodiscard]] static std::vector<CounterValue> DeltaCounters(
      const std::vector<CounterValue>& before,
      const std::vector<CounterValue>& now);

  // Zeroes every registered metric (registration survives). Test / replay
  // baseline only — never call while instrumented code runs concurrently.
  void ResetAll();

 private:
  mutable Mutex mu_;
  // std::map: stable addresses via unique_ptr, sorted iteration for free.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GL_GUARDED_BY(mu_);
};

}  // namespace gl::obs
