#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace gl::obs {
namespace {

// Span instance forest over an events snapshot: same-thread nesting from the
// recorded (tid, depth) stack, cross-thread lane roots adopted by time
// containment (see the header comment).
struct SpanNode {
  int parent = -1;
  std::vector<int> kids;  // sorted by (start_us, tid)
};

double EndUs(const TraceEvent& ev) { return ev.start_us + ev.dur_us; }

std::vector<SpanNode> BuildForest(const std::vector<TraceEvent>& events) {
  const int n = static_cast<int>(events.size());
  std::vector<SpanNode> nodes(static_cast<std::size_t>(n));

  // Pass 1: exact per-thread nesting. Events arrive sorted by (tid,
  // start_us, depth), so within a lane the recorded depth is the open-span
  // stack height at the moment the span opened.
  std::vector<int> stack;
  for (int i = 0; i < n; ++i) {
    const TraceEvent& ev = events[static_cast<std::size_t>(i)];
    if (i > 0 && ev.tid != events[static_cast<std::size_t>(i - 1)].tid) {
      stack.clear();
    }
    while (static_cast<int>(stack.size()) > ev.depth) stack.pop_back();
    if (!stack.empty()) {
      nodes[static_cast<std::size_t>(i)].parent = stack.back();
      nodes[static_cast<std::size_t>(stack.back())].kids.push_back(i);
    }
    stack.push_back(i);
  }

  // Pass 2: adopt lane roots across threads. A parentless span becomes the
  // child of the smallest strictly-longer span on another thread that fully
  // contains it in time; spans contained by nothing stay forest roots.
  constexpr double kTolUs = 1e-6;
  for (int i = 0; i < n; ++i) {
    if (nodes[static_cast<std::size_t>(i)].parent >= 0) continue;
    const TraceEvent& ev = events[static_cast<std::size_t>(i)];
    int best = -1;
    for (int j = 0; j < n; ++j) {
      const TraceEvent& cand = events[static_cast<std::size_t>(j)];
      if (cand.tid == ev.tid) continue;
      if (cand.start_us > ev.start_us + kTolUs ||
          EndUs(cand) + kTolUs < EndUs(ev)) {
        continue;  // not a container
      }
      if (cand.dur_us <= ev.dur_us + kTolUs) continue;  // no cycles
      if (best < 0 ||
          cand.dur_us < events[static_cast<std::size_t>(best)].dur_us) {
        best = j;
      }
    }
    if (best >= 0) {
      nodes[static_cast<std::size_t>(i)].parent = best;
      nodes[static_cast<std::size_t>(best)].kids.push_back(i);
    }
  }

  for (auto& node : nodes) {
    std::sort(node.kids.begin(), node.kids.end(), [&](int a, int b) {
      const TraceEvent& ea = events[static_cast<std::size_t>(a)];
      const TraceEvent& eb = events[static_cast<std::size_t>(b)];
      if (ea.start_us != eb.start_us) return ea.start_us < eb.start_us;
      if (ea.tid != eb.tid) return ea.tid < eb.tid;
      return a < b;
    });
  }
  return nodes;
}

// Merges span instance `i` (and its subtree) into the aggregated node for
// its name under `parent`.
void MergeInto(const std::vector<TraceEvent>& events,
               const std::vector<SpanNode>& nodes, int i,
               ProfileNode& parent) {
  const TraceEvent& ev = events[static_cast<std::size_t>(i)];
  auto it = std::find_if(
      parent.children.begin(), parent.children.end(),
      [&](const ProfileNode& c) { return c.name == ev.name; });
  if (it == parent.children.end()) {
    parent.children.push_back(ProfileNode{ev.name, 0, 0.0, 0.0, {}});
    it = parent.children.end() - 1;
  }
  ProfileNode& agg = *it;
  agg.count += 1;
  agg.total_us += ev.dur_us;
  double kids_us = 0.0;
  for (const int k : nodes[static_cast<std::size_t>(i)].kids) {
    kids_us += events[static_cast<std::size_t>(k)].dur_us;
  }
  agg.self_us += std::max(0.0, ev.dur_us - kids_us);
  for (const int k : nodes[static_cast<std::size_t>(i)].kids) {
    MergeInto(events, nodes, k, agg);
  }
}

void SortChildrenByName(ProfileNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.name < b.name;
            });
  for (auto& c : node.children) SortChildrenByName(c);
}

void CollectStacks(const ProfileNode& node, std::string& prefix,
                   std::vector<std::string>& lines) {
  const std::size_t prefix_len = prefix.size();
  if (!prefix.empty()) prefix.push_back(';');
  prefix += node.name;
  const auto self = static_cast<long long>(std::llround(node.self_us));
  if (self > 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " %lld", self);
    lines.push_back(prefix + buf);
  }
  for (const auto& c : node.children) CollectStacks(c, prefix, lines);
  prefix.resize(prefix_len);
}

// Maximal runs of time-overlapping children: clusters execute in sequence,
// members within a cluster are parallel alternatives.
struct Cluster {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<int> members;
};

std::vector<Cluster> ClusterKids(const std::vector<TraceEvent>& events,
                                 const std::vector<int>& kids) {
  std::vector<Cluster> clusters;
  // A lane span joins the previous cluster when that cluster is entirely
  // same-name lanes: the trace declared the batch data-parallel, so its
  // members are alternatives even when a narrow machine serialized them
  // (wall overlap alone cannot see that). Time overlap still merges as
  // before for everything else.
  const auto lanes_like = [&](const Cluster& c, const TraceEvent& ev) {
    if (!ev.parallel_lane) return false;
    for (const int m : c.members) {
      const TraceEvent& other = events[static_cast<std::size_t>(m)];
      if (!other.parallel_lane || other.name != ev.name) return false;
    }
    return true;
  };
  for (const int k : kids) {  // kids are sorted by start_us
    const TraceEvent& ev = events[static_cast<std::size_t>(k)];
    if (!clusters.empty() && (ev.start_us < clusters.back().hi ||
                              lanes_like(clusters.back(), ev))) {
      clusters.back().hi = std::max(clusters.back().hi, EndUs(ev));
      clusters.back().members.push_back(k);
    } else {
      clusters.push_back({ev.start_us, EndUs(ev), {k}});
    }
  }
  return clusters;
}

// The cost a span contributes as a path step: its own work with direct
// children's work subtracted. Spans recorded with thread-CPU time charge
// CPU self (cpu_us minus same-thread children's cpu_us) — blocked time
// never counts, and on an oversubscribed machine timesliced-out periods
// don't inflate the path the way wall self-time would. Adopted children on
// other threads burned their own threads' CPU, so they are not subtracted.
// Spans without CPU data (older traces) fall back to wall time minus the
// wall covered by child clusters.
double StepCostUs(const std::vector<TraceEvent>& events,
                  const std::vector<SpanNode>& nodes, int i) {
  const TraceEvent& ev = events[static_cast<std::size_t>(i)];
  const auto& kids = nodes[static_cast<std::size_t>(i)].kids;
  if (ev.cpu_us >= 0.0) {
    double kids_cpu = 0.0;
    for (const int k : kids) {
      const TraceEvent& kid = events[static_cast<std::size_t>(k)];
      if (kid.tid == ev.tid && kid.cpu_us > 0.0) kids_cpu += kid.cpu_us;
    }
    return std::max(0.0, ev.cpu_us - kids_cpu);
  }
  const auto clusters = ClusterKids(events, kids);
  double covered = 0.0;
  for (const auto& cluster : clusters) covered += cluster.hi - cluster.lo;
  return std::max(0.0, ev.dur_us - covered);
}

// Critical-path length of span instance `i`, memoized in `cp_us`.
double CriticalUs(const std::vector<TraceEvent>& events,
                  const std::vector<SpanNode>& nodes, int i,
                  std::vector<double>& cp_us) {
  double& memo = cp_us[static_cast<std::size_t>(i)];
  if (memo >= 0.0) return memo;
  const auto clusters = ClusterKids(events, nodes[static_cast<std::size_t>(i)].kids);
  double total = 0.0;
  for (const auto& cluster : clusters) {
    double best = 0.0;
    for (const int m : cluster.members) {
      best = std::max(best, CriticalUs(events, nodes, m, cp_us));
    }
    total += best;
  }
  memo = StepCostUs(events, nodes, i) + total;
  return memo;
}

// Emits the path steps in time order: the node's own serial remainder
// first, then — per cluster — the member with the longest critical path.
// `width` is the *effective* width: the max cluster size over the chain of
// ancestors that led here. A step below a width-8 cluster is not a serial
// wall even when its own siblings are singletons — the other seven cluster
// members were running the whole time and could have absorbed its time —
// so the inherited width, not the local cluster size alone, decides what
// counts toward serial_ms.
void WalkPath(const std::vector<TraceEvent>& events,
              const std::vector<SpanNode>& nodes, int i, int width,
              std::vector<double>& cp_us, CriticalPathResult& out) {
  const TraceEvent& ev = events[static_cast<std::size_t>(i)];
  const auto clusters = ClusterKids(events, nodes[static_cast<std::size_t>(i)].kids);
  const double self_ms = StepCostUs(events, nodes, i) / 1000.0;
  out.steps.push_back({ev.name, ev.arg, self_ms, width});
  out.path_ms += self_ms;
  if (width == 1) out.serial_ms += self_ms;
  for (const auto& cluster : clusters) {
    int best = cluster.members.front();
    for (const int m : cluster.members) {
      if (CriticalUs(events, nodes, m, cp_us) >
          CriticalUs(events, nodes, best, cp_us)) {
        best = m;
      }
    }
    WalkPath(events, nodes, best,
             std::max(width, static_cast<int>(cluster.members.size())),
             cp_us, out);
  }
}

}  // namespace

Profile BuildProfile(const std::vector<TraceEvent>& events) {
  Profile profile;
  profile.root.name = "(root)";
  const auto nodes = BuildForest(events);
  for (int i = 0; i < static_cast<int>(events.size()); ++i) {
    if (nodes[static_cast<std::size_t>(i)].parent < 0) {
      MergeInto(events, nodes, i, profile.root);
    }
  }
  SortChildrenByName(profile.root);
  for (const auto& c : profile.root.children) profile.root.total_us += c.total_us;

  std::map<std::string, FlatProfileEntry> flat;
  for (int i = 0; i < static_cast<int>(events.size()); ++i) {
    const TraceEvent& ev = events[static_cast<std::size_t>(i)];
    auto& entry = flat[ev.name];
    entry.name = ev.name;
    entry.count += 1;
    entry.total_us += ev.dur_us;
    double kids_us = 0.0;
    for (const int k : nodes[static_cast<std::size_t>(i)].kids) {
      kids_us += events[static_cast<std::size_t>(k)].dur_us;
    }
    entry.self_us += std::max(0.0, ev.dur_us - kids_us);
  }
  profile.flat.reserve(flat.size());
  for (auto& [name, entry] : flat) profile.flat.push_back(std::move(entry));
  std::sort(profile.flat.begin(), profile.flat.end(),
            [](const FlatProfileEntry& a, const FlatProfileEntry& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });
  return profile;
}

std::string CollapsedStacks(const Profile& profile) {
  std::vector<std::string> lines;
  std::string prefix;
  for (const auto& c : profile.root.children) CollectStacks(c, prefix, lines);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& line : lines) {
    out += line;
    out.push_back('\n');
  }
  return out;
}

CriticalPathResult ComputeCriticalPath(const std::vector<TraceEvent>& events,
                                       const std::string& root_name) {
  CriticalPathResult out;
  const auto nodes = BuildForest(events);
  int root = -1;
  for (int i = 0; i < static_cast<int>(events.size()); ++i) {
    const TraceEvent& ev = events[static_cast<std::size_t>(i)];
    const bool eligible = root_name.empty()
                              ? nodes[static_cast<std::size_t>(i)].parent < 0
                              : root_name == ev.name;
    if (!eligible) continue;
    if (root < 0 || ev.dur_us > events[static_cast<std::size_t>(root)].dur_us) {
      root = i;
    }
  }
  if (root < 0) return out;
  out.root_name = events[static_cast<std::size_t>(root)].name;
  out.root_ms = events[static_cast<std::size_t>(root)].dur_us / 1000.0;
  std::vector<double> cp_us(events.size(), -1.0);
  WalkPath(events, nodes, root, 1, cp_us, out);
  return out;
}

}  // namespace gl::obs
