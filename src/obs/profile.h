// Span-stream profiling: weighted call trees, collapsed stacks, critical path.
//
// The trace layer (obs/trace.h) records flat timed spans; this header turns
// a snapshot of those spans into attribution: which frames carry the time
// (self vs. total), what a flamegraph of the run looks like, and — the part
// flat tables cannot answer — how long the *critical path* through a
// parallel region is. The partitioner's fan-out runs worker subtrees
// concurrently (DESIGN.md §9), so wall time is not the sum of span times;
// the critical path is the longest chain of spans that could not have
// overlapped, and its serial steps are exactly the Amdahl wall that caps
// the t8 speedup (ROADMAP item 1).
//
// Reconstruction is structural, not intrusive: per-thread nesting comes from
// the (tid, depth) fields the span stack already records, and spans opened
// on pool worker lanes (depth 0 on their own thread) are adopted by the
// smallest span on another thread that fully contains them in time — which
// recovers `partition.worker` under `partition.parallel` without the trace
// layer knowing anything about fork points.
//
// Everything here is informational (DESIGN.md §10): profiles are derived
// from timings, never hashed, never compared for equality, and never feed a
// decision. Aggregation keys on span *names* only, so the shape of a
// profile (names and counts) is identical at every thread count even though
// the times differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace gl::obs {

// One frame of the aggregated call tree. `total_us` is inclusive;
// `self_us` is the frame's own time with direct children subtracted,
// clamped at zero — parallel children can oversubscribe their parent's
// wall, in which case the parent has no attributable self time.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
  std::vector<ProfileNode> children;  // sorted by name
};

// Per-name totals over every span instance regardless of position in the
// tree. `total_us` double-counts recursive frames (a span nested under a
// same-named span contributes to both instances); `self_us` never does.
struct FlatProfileEntry {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

struct Profile {
  ProfileNode root;                    // synthetic "(root)" frame
  std::vector<FlatProfileEntry> flat;  // self-time descending, then name
};

// Aggregates a Trace::Events() snapshot (already sorted by tid, start,
// depth) into a name-keyed call tree plus flat per-name totals.
[[nodiscard]] Profile BuildProfile(const std::vector<TraceEvent>& events);

// Flamegraph/speedscope collapsed-stack export: one "a;b;c N" line per
// tree node with nonzero self time, N in integer microseconds, lines
// sorted lexicographically (canonical output for diffing two runs).
[[nodiscard]] std::string CollapsedStacks(const Profile& profile);

// One step of the critical path. `width` is how many spans ran as parallel
// alternatives at that point: the max overlap-cluster size over the chain
// of ancestors that led to the step (a step nested under a width-8 worker
// cluster keeps width >= 8 even when its own siblings are singletons — the
// other cluster members were live for its whole duration). Width 1 means
// the step was serial — nothing else could have absorbed its time.
struct CriticalPathStep {
  std::string name;
  std::int64_t arg = TraceEvent::kNoArg;
  double ms = 0.0;
  int width = 1;
};

struct CriticalPathResult {
  std::string root_name;  // empty when no root span was found
  double root_ms = 0.0;   // wall time of the chosen root span
  double path_ms = 0.0;   // critical-path length (sum of steps)
  double serial_ms = 0.0; // sum of width-1 steps: the Amdahl serial wall
  std::vector<CriticalPathStep> steps;  // in time order along the path
};

// Longest dependency chain through the span forest. Children of a span are
// grouped into clusters of time-overlapping intervals: clusters execute in
// sequence (each contributes the max critical path over its members, the
// chosen member's steps carrying the cluster size — or any larger inherited
// ancestor width — as `width`), and the parent's uncovered wall is its own
// serial contribution. `root_name`
// selects the root span by name (longest instance wins); when empty, the
// longest top-level span of the whole trace is used.
[[nodiscard]] CriticalPathResult ComputeCriticalPath(
    const std::vector<TraceEvent>& events, const std::string& root_name = "");

}  // namespace gl::obs
