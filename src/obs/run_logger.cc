#include "obs/run_logger.h"

#include "common/json_writer.h"

namespace gl::obs {

RunLogger::RunLogger(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    std::fprintf(stderr, "RunLogger: cannot open %s for writing\n",
                 path.c_str());
  }
}

RunLogger::RunLogger(std::string* sink) : sink_(sink) {}

RunLogger::~RunLogger() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string RunLogger::EpochLine(const EpochRecord& rec) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("schema");
  w.String(EpochRecord::kSchema);
  w.Key("scheduler");
  w.String(rec.scheduler);
  w.Key("scenario");
  w.String(rec.scenario);
  w.Key("epoch");
  w.Int(rec.epoch);

  w.Key("metrics");
  w.BeginObject();
  w.Key("active_servers");
  w.Int(rec.active_servers);
  w.Key("active_switches");
  w.Int(rec.active_switches);
  w.Key("server_watts");
  w.Double(rec.server_watts);
  w.Key("network_watts");
  w.Double(rec.network_watts);
  w.Key("total_watts");
  w.Double(rec.total_watts);
  w.Key("mean_tct_ms");
  w.Double(rec.mean_tct_ms);
  w.Key("p99_tct_ms");
  w.Double(rec.p99_tct_ms);
  w.Key("energy_per_request_j");
  w.Double(rec.energy_per_request_j);
  w.Key("migrations");
  w.Int(rec.migrations);
  w.Key("placed");
  w.Int(rec.placed_containers);
  w.Key("unplaced");
  w.Int(rec.unplaced_containers);
  w.Key("audit_findings");
  w.Int(rec.audit_findings);
  w.EndObject();

  w.Key("counters");
  w.BeginObject();
  for (const auto& cv : rec.counters) {
    w.Key(cv.name);
    w.UInt(cv.value);
  }
  w.EndObject();

  if (rec.has_hash) {
    w.Key("hash");
    w.BeginObject();
    w.Key("placement");
    w.Hex64(rec.hash_placement);
    w.Key("loads");
    w.Hex64(rec.hash_loads);
    w.Key("power");
    w.Hex64(rec.hash_power);
    w.Key("migration");
    w.Hex64(rec.hash_migration);
    w.Key("rng");
    w.Hex64(rec.hash_rng);
    w.EndObject();
  }

  // Informational tail: gl_report --check strips everything from "timings"
  // on before comparing two streams. wall_ms, the phase spans and the
  // informational gauges all live inside it — the deterministic prefix
  // carries no timing- or environment-dependent byte.
  w.Key("timings");
  w.BeginObject();
  w.Key("wall_ms");
  w.Double(rec.wall_ms);
  w.Key("phases");
  w.BeginObject();
  for (const auto& p : rec.phases) {
    w.Key(p.name);
    w.Double(p.ms);
  }
  w.EndObject();
  if (!rec.info_gauges.empty()) {
    w.Key("gauges");
    w.BeginObject();
    for (const auto& gv : rec.info_gauges) {
      w.Key(gv.name);
      w.Double(gv.value);
    }
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return out;
}

void RunLogger::WriteEpoch(const EpochRecord& rec) {
  std::string line = EpochLine(rec);
  line.push_back('\n');
  MutexLock lock(mu_);
  if (file_ != nullptr) {
    std::fwrite(line.data(), 1, line.size(), file_);
  } else if (sink_ != nullptr) {
    sink_->append(line);
  }
  ++lines_;
}

std::uint64_t RunLogger::lines_written() const {
  MutexLock lock(mu_);
  return lines_;
}

}  // namespace gl::obs
