// The sanctioned monotonic clock (the only home for raw std::chrono timers).
//
// Wall-clock values are poison for determinism (DESIGN.md §8): a timestamp
// that feeds a seed or a decision makes the run unreplayable. But a system
// that is meant to run "as fast as the hardware allows" still has to be
// *measured*, and measurement needs a clock. This header is the compromise:
// the one place raw std::chrono::steady_clock may be touched (gl_lint GL009
// flags it anywhere else), exporting timer types whose values are
// informational only — they may be printed, logged and plotted, but must
// never feed simulation state, seeds, or the §8 state hashes.
#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

namespace gl::obs {

// Microseconds on the process-wide monotonic clock. Informational only.
[[nodiscard]] inline std::int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Microseconds of CPU time consumed by the calling thread. Informational
// only, like the wall clock above. Distinct from MonotonicMicros on an
// oversubscribed machine: a thread timesliced out accrues wall time but no
// CPU time, so span CPU deltas measure inherent work, immune to interleave
// stretching (obs/profile.h charges critical-path steps with these).
[[nodiscard]] inline std::int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000 +
         static_cast<std::int64_t>(ts.tv_nsec) / 1000;
#else
  return MonotonicMicros();  // degraded: wall approximates cpu
#endif
}

// Elapsed-time stopwatch: starts at construction, reads in milliseconds.
class WallTimer {
 public:
  WallTimer() : start_us_(MonotonicMicros()) {}

  void Reset() { start_us_ = MonotonicMicros(); }

  [[nodiscard]] double ElapsedMs() const {
    return static_cast<double>(MonotonicMicros() - start_us_) / 1000.0;
  }
  [[nodiscard]] double ElapsedUs() const {
    return static_cast<double>(MonotonicMicros() - start_us_);
  }

 private:
  std::int64_t start_us_;
};

}  // namespace gl::obs
