#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/check.h"
#include "common/json_writer.h"
#include "obs/clock.h"

namespace gl::obs {
namespace {

// Process-wide slots live behind accessors so no mutable state sits at
// namespace scope (gl_lint GL007). The active-trace slot is the only thing
// a disabled TraceSpan touches: one relaxed load.
std::atomic<Trace*>& ActiveSlot() {
  static std::atomic<Trace*> slot{nullptr};
  return slot;
}

std::uint64_t NextTraceId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread span bookkeeping. Keyed by trace *id*, not pointer, so a new
// trace reusing a freed trace's address cannot inherit a stale thread index.
struct ThreadState {
  std::uint64_t trace_id = 0;
  int tid = 0;
  int depth = 0;
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

}  // namespace

Trace::Trace() : id_(NextTraceId()), t0_us_(MonotonicMicros()) {}

Trace::~Trace() { Deactivate(); }

void Trace::Activate() {
  Trace* expected = nullptr;
  GOLDILOCKS_CHECK_MSG(
      ActiveSlot().compare_exchange_strong(expected, this),
      "a trace is already active; traces do not nest");
}

void Trace::Deactivate() {
  Trace* expected = this;
  ActiveSlot().compare_exchange_strong(expected, nullptr);
}

Trace* Trace::Active() {
  return ActiveSlot().load(std::memory_order_acquire);
}

void Trace::Record(const TraceEvent& ev) {
  MutexLock lock(mu_);
  events_.push_back(ev);
}

int Trace::RegisterThread() {
  MutexLock lock(mu_);
  return next_tid_++;
}

double Trace::NowRelUs() const {
  return static_cast<double>(MonotonicMicros() - t0_us_);
}

std::vector<TraceEvent> Trace::Events() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return out;
}

std::vector<Trace::PhaseStat> Trace::Summary() const {
  const auto events = Events();
  std::vector<PhaseStat> stats;
  for (const auto& ev : events) {
    auto it = std::find_if(stats.begin(), stats.end(), [&](const PhaseStat& s) {
      return s.name == ev.name;
    });
    if (it == stats.end()) {
      stats.push_back({ev.name, 0, 0.0, 0.0});
      it = stats.end() - 1;
    }
    ++it->count;
    it->total_ms += ev.dur_us / 1000.0;
    it->max_ms = std::max(it->max_ms, ev.dur_us / 1000.0);
  }
  std::sort(stats.begin(), stats.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              return a.name < b.name;
            });
  return stats;
}

bool Trace::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& ev : Events()) {
    w.BeginObject();
    w.Key("name");
    w.String(ev.name);
    w.Key("cat");
    w.String("gl");
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Double(ev.start_us);
    w.Key("dur");
    w.Double(ev.dur_us);
    w.Key("cpu");
    w.Double(ev.cpu_us);
    w.Key("lane");
    w.Int(ev.parallel_lane ? 1 : 0);
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(ev.tid);
    if (ev.arg != TraceEvent::kNoArg) {
      w.Key("args");
      w.BeginObject();
      w.Key("arg");
      w.Int(ev.arg);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  out.push_back('\n');
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

TraceSpan::TraceSpan(const char* name, std::int64_t arg, bool parallel_lane)
    : trace_(Trace::Active()), name_(name), arg_(arg),
      parallel_lane_(parallel_lane) {
  if (trace_ == nullptr) return;
  ThreadState& tls = Tls();
  if (tls.trace_id != trace_->id()) {
    tls.trace_id = trace_->id();
    tls.tid = trace_->RegisterThread();
    tls.depth = 0;
  }
  tid_ = tls.tid;
  depth_ = tls.depth++;
  start_us_ = trace_->NowRelUs();
  start_cpu_us_ = ThreadCpuMicros();
}

TraceSpan::~TraceSpan() {
  if (trace_ == nullptr) return;
  ThreadState& tls = Tls();
  // The trace this span opened on may already have been replaced on this
  // thread by a newer one (spans must not outlive their trace; checked by
  // the id comparison rather than trusted).
  if (tls.trace_id == trace_->id()) tls.depth = depth_;
  TraceEvent ev;
  ev.name = name_;
  ev.tid = tid_;
  ev.depth = depth_;
  ev.start_us = start_us_;
  ev.dur_us = trace_->NowRelUs() - start_us_;
  ev.cpu_us =
      static_cast<double>(ThreadCpuMicros() - start_cpu_us_);
  ev.parallel_lane = parallel_lane_;
  ev.arg = arg_;
  trace_->Record(ev);
}

}  // namespace gl::obs
