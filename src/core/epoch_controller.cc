#include "core/epoch_controller.h"

#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace gl {

EpochController::EpochController(std::unique_ptr<Scheduler> scheduler,
                                 const Topology& topo,
                                 MigrationPlannerOptions planner_opts)
    : scheduler_(std::move(scheduler)),
      topo_(topo),
      planner_opts_(planner_opts) {
  GOLDILOCKS_CHECK(scheduler_ != nullptr);
}

void EpochController::EnableAudit(AuditOptions opts, bool fail_fast) {
  audit_ = true;
  audit_fail_fast_ = fail_fast;
  audit_opts_ = opts;
}

EpochDecision EpochController::Step(const Workload& workload,
                                    std::span<const Resource> demands,
                                    std::span<const std::uint8_t> active) {
  obs::TraceSpan span("controller.step", epoch_);
  EpochDecision decision;
  decision.epoch = epoch_;

  SchedulerInput input;
  input.workload = &workload;
  input.demands = demands;
  input.active = active;
  input.topology = &topo_;
  input.previous = current_.server_of.empty() ? nullptr : &current_;
  decision.placement = scheduler_->Place(input);
  decision.containers_placed = decision.placement.num_placed();

  if (!current_.server_of.empty()) {
    const std::size_t m =
        std::min(current_.server_of.size(), decision.placement.server_of.size());
    for (std::size_t i = 0; i < m; ++i) {
      const bool was = current_.server_of[i].valid();
      const bool is = decision.placement.server_of[i].valid();
      decision.containers_started += !was && is;
      decision.containers_stopped += was && !is;
    }
    decision.plan = PlanMigrations(current_, decision.placement, workload,
                                   demands, topo_, planner_opts_);
    total_makespan_ms_ += decision.plan.makespan_ms;
    total_image_gb_ += decision.plan.total_image_gb;
  } else {
    decision.containers_started = decision.containers_placed;
  }

  if (hash_) {
    EpochStateHash h;
    h.epoch = epoch_;
    h.placement = HashAssignment(decision.placement.server_of);
    h.loads = HashLoads(
        ServerLoads(decision.placement, demands, topo_.num_servers()));
    StateHasher mig;
    mig.MixU64(decision.plan.steps.size());
    for (const auto& step : decision.plan.steps) {
      mig.MixId(step.container);
      mig.MixId(step.from);
      mig.MixId(step.to);
      mig.MixI32(step.phase);
      mig.MixDouble(step.transfer_ms);
    }
    mig.MixDouble(decision.plan.makespan_ms);
    mig.MixDouble(decision.plan.total_image_gb);
    h.migration = mig.digest();
    h.rng = scheduler_->StateDigest();
    state_hashes_.push_back(h);
  }

  if (audit_) {
    const InvariantAuditor auditor(audit_opts_);
    SystemView view;
    view.topology = &topo_;
    view.workload = &workload;
    view.demands = demands;
    view.active = active;
    view.placement = &decision.placement;
    const AuditReport report = auditor.AuditAll(view);
    if (audit_fail_fast_ && report.errors() > 0) {
      GOLDILOCKS_CHECK_MSG(false, report.ToString().c_str());
    }
    audit_report_.Append(report);
  }

  current_ = decision.placement;
  ++epoch_;
  return decision;
}

}  // namespace gl
