#include "core/virtual_cluster.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {

VirtualClusterPlacer::VirtualClusterPlacer(const Topology& topo,
                                           VirtualClusterOptions opts)
    : topo_(topo), opts_(opts) {
  loads_.resize(static_cast<std::size_t>(topo.num_servers()));
  p_sum_.assign(static_cast<std::size_t>(topo.num_nodes()), 0.0);
  node_groups_.resize(static_cast<std::size_t>(topo.num_nodes()));
}

Resource VirtualClusterPlacer::Ceiling(ServerId s) const {
  const Resource& cap = topo_.server_capacity(s);
  return Resource{.cpu = cap.cpu * opts_.pee_utilization,
                  .mem_gb = cap.mem_gb * opts_.memory_ceiling,
                  .net_mbps = cap.net_mbps * opts_.pee_utilization};
}

const std::vector<ServerId>& VirtualClusterPlacer::ServersCached(
    NodeId subtree) {
  auto it = servers_cache_.find(subtree.value());
  if (it == servers_cache_.end()) {
    it = servers_cache_.emplace(subtree.value(),
                                topo_.ServersUnder(subtree)).first;
  }
  return it->second;
}

bool VirtualClusterPlacer::TryFill(std::span<const ContainerId> containers,
                                   std::span<const Resource> demands,
                                   NodeId subtree, Tentative& out) {
  out.assignment.clear();
  const auto& servers = ServersCached(subtree);
  // Tentative additional load per server in this attempt.
  std::unordered_map<int, Resource> added;
  for (const auto c : containers) {
    const auto& d = demands[static_cast<std::size_t>(c.value())];
    bool placed = false;
    for (const auto s : servers) {
      Resource load = loads_[static_cast<std::size_t>(s.value())];
      const auto it = added.find(s.value());
      if (it != added.end()) load += it->second;
      if ((load + d).FitsIn(Ceiling(s))) {
        added[s.value()] += d;
        out.assignment.emplace_back(c, s);
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  return true;
}

double VirtualClusterPlacer::ReservationWith(
    NodeId n, int g_extra, const std::map<int, double>& delta,
    double extra_total GL_UNITS(bits_per_sec)) const GL_UNITS(bits_per_sec) {
  const auto ni = static_cast<std::size_t>(n.value());
  // Updated aggregates if the tentative component lands.
  const auto dit = delta.find(n.value());
  const double d_in GL_UNITS(bits_per_sec) =
      dit != delta.end() ? dit->second : 0.0;
  const bool extra_new = g_extra >= 0 && !group_touched_[
      static_cast<std::size_t>(g_extra)];
  const double p_sum GL_UNITS(bits_per_sec) = p_sum_[ni] + d_in;
  const double placed_total GL_UNITS(bits_per_sec) =
      placed_total_bw_ + (extra_new ? extra_total : 0.0);
  const double pending_total GL_UNITS(bits_per_sec) =
      pending_total_bw_ - (extra_new ? extra_total : 0.0);

  auto r_for = [&](int g, double b_in GL_UNITS(bits_per_sec)) {
    const double b_tot GL_UNITS(bits_per_sec) =
        g == g_extra && extra_new ? extra_total
                                  : b_total_[static_cast<std::size_t>(g)];
    // Eq. (5): traffic crossing this uplink on behalf of group g is at most
    // the group's inside bandwidth, and at most its own outside component
    // plus everything the other groups keep outside (placed groups'
    // component b, pending groups in full).
    const double outside_own GL_UNITS(bits_per_sec) = b_tot - b_in;
    const double outside_others GL_UNITS(bits_per_sec) =
        (placed_total - b_tot) - (p_sum - b_in);
    const double need GL_UNITS(bits_per_sec) =
        outside_own + std::max(0.0, outside_others) + pending_total;
    return std::min(b_in, need);
  };

  double total GL_UNITS(bits_per_sec) = 0.0;
  bool g_extra_counted = false;
  for (const auto& [g, b_in] : node_groups_[ni]) {
    double b GL_UNITS(bits_per_sec) = b_in;
    if (g == g_extra) {
      b += d_in;
      g_extra_counted = true;
    }
    total += r_for(g, b);
  }
  if (!g_extra_counted && g_extra >= 0 && d_in > 0.0) {
    total += r_for(g_extra, d_in);
  }
  return total;
}

bool VirtualClusterPlacer::BandwidthFeasible(
    int g, const Tentative& t, std::span<const Resource> demands) {
  // b_in deltas along every ancestor path of the tentative servers.
  // Ordered so the per-node feasibility sweep below is deterministic.
  std::map<int, double> delta GL_UNITS(bits_per_sec);
  double extra_total GL_UNITS(bits_per_sec) =
      b_total_[static_cast<std::size_t>(g)];
  for (const auto& [c, s] : t.assignment) {
    const double bw GL_UNITS(bits_per_sec) =
        demands[static_cast<std::size_t>(c.value())].net_mbps;
    for (NodeId n = topo_.server_node(s); n.valid();
         n = topo_.node(n).parent) {
      delta[n.value()] += bw;
    }
  }
  for (const auto& [node_value, d_in] : delta) {
    (void)d_in;
    const NodeId n{node_value};
    if (!topo_.node(n).parent.valid()) continue;  // root has no uplink
    const double need GL_UNITS(bits_per_sec) =
        ReservationWith(n, g, delta, extra_total);
    if (!WithinCap(need, topo_.uplink_capacity(n))) return false;
  }
  return true;
}

void VirtualClusterPlacer::Commit(int g, const Tentative& t,
                                  std::span<const Resource> demands,
                                  Placement& placement) {
  const auto gi = static_cast<std::size_t>(g);
  if (!group_touched_[gi]) {
    group_touched_[gi] = 1;
    placed_total_bw_ += b_total_[gi];
    pending_total_bw_ -= b_total_[gi];
  }
  for (const auto& [c, s] : t.assignment) {
    const auto ci = static_cast<std::size_t>(c.value());
    loads_[static_cast<std::size_t>(s.value())] += demands[ci];
    placement.server_of[ci] = s;
    const double bw GL_UNITS(bits_per_sec) = demands[ci].net_mbps;
    for (NodeId n = topo_.server_node(s); n.valid();
         n = topo_.node(n).parent) {
      const auto ni = static_cast<std::size_t>(n.value());
      node_groups_[ni][g] += bw;
      p_sum_[ni] += bw;
    }
  }
}

Placement VirtualClusterPlacer::PlaceGroups(
    const std::vector<std::vector<ContainerId>>& groups,
    std::span<const Resource> demands, std::size_t num_containers) {
  obs::TraceSpan span("vc.place_groups",
                      static_cast<std::int64_t>(groups.size()));
  Placement placement;
  placement.server_of.assign(num_containers, ServerId::invalid());

  const int num_groups = static_cast<int>(groups.size());
  b_total_.assign(static_cast<std::size_t>(num_groups), 0.0);
  group_touched_.assign(static_cast<std::size_t>(num_groups), 0);
  pending_total_bw_ = 0.0;
  placed_total_bw_ = 0.0;
  for (int g = 0; g < num_groups; ++g) {
    for (const auto c : groups[static_cast<std::size_t>(g)]) {
      b_total_[static_cast<std::size_t>(g)] +=
          demands[static_cast<std::size_t>(c.value())].net_mbps;
    }
    pending_total_bw_ += b_total_[static_cast<std::size_t>(g)];
  }

  for (int g = 0; g < num_groups; ++g) {
    const auto& group = groups[static_cast<std::size_t>(g)];
    if (group.empty()) continue;

    // Try the smallest left-most subtree that can host the whole group.
    bool placed_whole = false;
    for (int level = 1; level < topo_.num_levels() && !placed_whole;
         ++level) {
      for (const auto node : topo_.NodesAtLevel(level)) {
        Tentative t;
        if (!TryFill(group, demands, node, t)) continue;
        if (!BandwidthFeasible(g, t, demands)) continue;
        Commit(g, t, demands, placement);
        placed_whole = true;
        break;
      }
    }
    if (placed_whole) {
      ++stats_.groups_placed_whole;
      continue;
    }

    // Split path: place container-by-container into the left-most feasible
    // rack; relax the bandwidth constraint only as a last resort (counted
    // as a violation — the paper grows the active set by a pod instead).
    ++stats_.groups_split;
    const auto racks = topo_.NodesAtLevel(1);
    for (const auto c : group) {
      bool done = false;
      for (int pass = 0; pass < 2 && !done; ++pass) {
        const bool check_bw = pass == 0;
        for (const auto rack : racks) {
          Tentative t;
          const ContainerId one[] = {c};
          if (!TryFill(one, demands, rack, t)) continue;
          if (check_bw && !BandwidthFeasible(g, t, demands)) continue;
          if (!check_bw) ++stats_.bandwidth_violations;
          Commit(g, t, demands, placement);
          done = true;
          break;
        }
      }
      // A container that fits nowhere even capacity-wise stays unplaced.
    }
  }
  static obs::Counter& whole = obs::MetricsRegistry::Global().GetCounter(
      "vc.groups_placed_whole", obs::MetricKind::kDeterministic);
  static obs::Counter& split = obs::MetricsRegistry::Global().GetCounter(
      "vc.groups_split", obs::MetricKind::kDeterministic);
  static obs::Counter& bw = obs::MetricsRegistry::Global().GetCounter(
      "vc.bandwidth_violations", obs::MetricKind::kDeterministic);
  whole.Add(static_cast<std::uint64_t>(stats_.groups_placed_whole));
  split.Add(static_cast<std::uint64_t>(stats_.groups_split));
  bw.Add(static_cast<std::uint64_t>(stats_.bandwidth_violations));
  return placement;
}

double VirtualClusterPlacer::ReservationOn(NodeId node) const {
  return ReservationWith(node, -1, {}, 0.0);
}

}  // namespace gl
