#include "core/scheduler_factory.h"

#include "core/goldilocks.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/random_scheduler.h"
#include "schedulers/rc_informed.h"

namespace gl {

const std::vector<std::string>& NamedSchedulers() {
  static const std::vector<std::string> kNames = {
      "goldilocks", "mpp", "borg", "epvm", "rc", "random"};
  return kNames;
}

std::unique_ptr<Scheduler> MakeNamedScheduler(const std::string& name,
                                              double pee, std::uint64_t seed,
                                              int partition_threads) {
  if (name == "goldilocks") {
    GoldilocksOptions opts;
    opts.pee_utilization = pee;
    opts.partition.threads = partition_threads;
    return std::make_unique<GoldilocksScheduler>(opts);
  }
  if (name == "mpp") return std::make_unique<MppScheduler>();
  if (name == "borg") return std::make_unique<BorgScheduler>();
  if (name == "epvm") return std::make_unique<EPvmScheduler>();
  if (name == "rc") return std::make_unique<RcInformedScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>(seed);
  return nullptr;
}

}  // namespace gl
