// Virtual-Cluster placement on asymmetric topologies (Sec. IV).
//
// Each container group is abstracted as an Oktopus-style Virtual Cluster
// [46]: containers hang off a virtual switch, and container i needs
// bandwidth B_i (its network demand — conservatively covering intra- and
// inter-group traffic). Placing a group on a subtree T requires, besides
// CPU/memory room on T's servers, a reservation on T's outbound uplink of
//
//   R_Gk(T) = min( Σ_{q∈Gka} B_q,
//                  Σ_{r∈Gkb} B_r                       [intra, Eq. 4]
//                + Σ_{y<k} Σ_{r∈Gyb} B_r               [placed groups, Eq. 5]
//                + Σ_{z>k} Σ_{s∈Gz}  B_s )             [pending groups, Eq. 5]
//
// where component a is the part of the group inside T and component b the
// part outside. Groups are placed on the smallest left-most subtree that can
// hold them entirely; a group that fits no subtree is split across racks
// with per-component reservations (the paper's component-a/component-b
// case). Heterogeneous servers are handled naturally: fitting is checked
// against each server's own capacity.
#pragma once

#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "schedulers/placement.h"
#include "workload/container.h"

namespace gl {

struct VirtualClusterOptions {
  double pee_utilization GL_UNITS(dimensionless) = 0.70;
  double memory_ceiling GL_UNITS(dimensionless) = 1.0;
};

struct VirtualClusterStats {
  int groups_placed_whole = 0;   // found a single subtree
  int groups_split = 0;          // spilled across subtrees
  int bandwidth_violations = 0;  // containers placed despite an infeasible
                                 // reservation (placement never fails hard)
};

class VirtualClusterPlacer {
 public:
  VirtualClusterPlacer(const Topology& topo, VirtualClusterOptions opts);

  // Groups in locality order; demands indexed by ContainerId value.
  Placement PlaceGroups(const std::vector<std::vector<ContainerId>>& groups,
                        std::span<const Resource> demands,
                        std::size_t num_containers);

  [[nodiscard]] const VirtualClusterStats& stats() const { return stats_; }
  // Reservation currently required on a node's uplink (after PlaceGroups).
  [[nodiscard]] double ReservationOn(NodeId node) const
      GL_UNITS(bits_per_sec);

 private:
  struct Tentative {
    // container → server chosen in this attempt.
    std::vector<std::pair<ContainerId, ServerId>> assignment;
  };

  [[nodiscard]] Resource Ceiling(ServerId s) const;
  [[nodiscard]] const std::vector<ServerId>& ServersCached(NodeId subtree);

  // Greedy fill of `containers` into servers under `subtree`; returns true
  // and the assignment if every container fits (capacity only).
  bool TryFill(std::span<const ContainerId> containers,
               std::span<const Resource> demands, NodeId subtree,
               Tentative& out);

  // Reservation Σ_g R_g(n) on node n's uplink, with optional tentative
  // deltas applied for group `g_extra` (b_in delta per node). Ordered map
  // for the same reason as node_groups_: deterministic summation order.
  [[nodiscard]] double ReservationWith(
      NodeId n, int g_extra, const std::map<int, double>& delta,
      double extra_total GL_UNITS(bits_per_sec)) const GL_UNITS(bits_per_sec);

  // True if committing `t` for group g keeps every affected uplink feasible.
  bool BandwidthFeasible(int g, const Tentative& t,
                         std::span<const Resource> demands);

  void Commit(int g, const Tentative& t, std::span<const Resource> demands,
              Placement& placement);

  const Topology& topo_;
  VirtualClusterOptions opts_;
  VirtualClusterStats stats_;

  std::vector<Resource> loads_;  // per server
  // Per group: total bandwidth Σ B_i of its members.
  std::vector<double> b_total_ GL_UNITS(bits_per_sec);
  std::vector<std::uint8_t> group_touched_;  // group has placed members
  // Σ b_total of untouched / touched groups.
  double pending_total_bw_ GL_UNITS(bits_per_sec) = 0.0;
  double placed_total_bw_ GL_UNITS(bits_per_sec) = 0.0;
  // Per node: Σ placed b_in.
  std::vector<double> p_sum_ GL_UNITS(bits_per_sec);
  // node → (group → b_in). Sparse: only nodes on ancestor paths appear.
  // Ordered map: ReservationWith sums doubles over it, and floating-point
  // summation order must not depend on hash buckets.
  std::vector<std::map<int, double>> node_groups_;
  std::unordered_map<int, std::vector<ServerId>> servers_cache_;
};

}  // namespace gl
