// The Goldilocks scheduler (Sec. III: symmetric topologies).
//
// Placement pipeline per epoch:
//   1. Build the container graph for the active containers.
//   2. Recursively bipartition it (min-cut, balanced) until every group's
//      aggregate demand fits one server packed to the Peak Energy Efficiency
//      ceiling (70% CPU/network by default; memory has its own ceiling —
//      RAM draws little dynamic power, so there is no PEE argument for
//      leaving 30% of it idle).
//   3. Optionally re-merge sibling groups whose combined demand still fits
//      the ceiling — recursive halving alone can leave servers half full.
//   4. Walk groups in recursion-tree (locality) order and servers in
//      topology (left-most) order, assigning each group to the next server
//      it fits on. Sibling groups land on adjacent servers — the same rack
//      or pod — which is exactly the capacity-graph max-cut assignment of
//      the paper, computed directly on the topology tree.
//
// Options cover the paper's ablations (PEE ceiling, locality on/off) and the
// asymmetric path (Sec. IV) via the Virtual Cluster placer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/graph_builder.h"
#include "graph/partitioner.h"
#include "schedulers/scheduler.h"

namespace gl {

struct GoldilocksOptions {
  // Packing ceiling at the Peak Energy Efficiency point (CPU & network).
  double pee_utilization = 0.70;
  // Memory ceiling (kept below 100% for kernel/page-cache headroom; RAM
  // draws little dynamic power and does not burst, so it is not tied to
  // the PEE point).
  double memory_ceiling = 1.0;
  // Groups are formed against ceiling × (1 - group_headroom) so a cached
  // grouping survives epoch-to-epoch demand growth (the reuse check and the
  // final placement still enforce the full ceiling).
  double group_headroom GL_UNITS(dimensionless) = 0.10;
  // A group stays on its current server while the server remains below
  // this fraction of *full* capacity (CPU/network): moderate drift is
  // absorbed by the PEE headroom instead of triggering migration; beyond
  // it the group is re-placed. Memory is always allowed to 100%.
  double stability_ceiling = 0.85;
  // Re-merge sibling partitions that jointly fit one server.
  bool merge_sibling_groups = true;
  // Ablation hook: when false, groups are assigned to servers in a
  // demand-size order with no relation to the recursion tree, destroying
  // inter-group locality while keeping identical packing.
  bool locality_order = true;
  // Use the Sec. IV Virtual Cluster placer (required for asymmetric
  // topologies / heterogeneous servers; optional for symmetric ones).
  bool use_virtual_clusters = false;
  // Epochs between full re-partitions; between them the previous grouping
  // is re-packed with fresh demands (and re-partitioned anyway if any group
  // outgrew a server).
  int repartition_interval = 1;
  // When a re-partition is due and a previous grouping exists, repair it
  // incrementally (graph/incremental.h — the paper's Sec. IV-C future
  // work) instead of running a fresh recursive partition. Bounds migration
  // churn at a small cost in cut quality.
  bool incremental_repartition = false;
  PartitionOptions partition;
};

class GoldilocksScheduler final : public Scheduler {
 public:
  explicit GoldilocksScheduler(GoldilocksOptions opts = {});
  ~GoldilocksScheduler() override;

  [[nodiscard]] const std::string& name() const override { return name_; }
  Placement Place(const SchedulerInput& input) override;
  // Digest of the partition cache (grouping, recursion paths, group →
  // server pins) — the mutable state that steers placements across epochs.
  [[nodiscard]] std::uint64_t StateDigest() const override;

  // Grouping produced by the last Place() call (group id per ContainerId,
  // -1 for inactive) — exposed for the Fig. 7 visualisations and tests.
  [[nodiscard]] const std::vector<int>& last_grouping() const {
    return last_grouping_;
  }
  [[nodiscard]] int last_num_groups() const { return last_num_groups_; }

 private:
  struct PartitionCache;

  // Returns groups as container-id lists, in the order they should be laid
  // onto servers.
  std::vector<std::vector<ContainerId>> PartitionContainers(
      const SchedulerInput& input);

  Placement AssignGroupsSymmetric(
      const SchedulerInput& input,
      const std::vector<std::vector<ContainerId>>& groups) const;

  std::string name_ = "Goldilocks";
  GoldilocksOptions opts_;
  std::unique_ptr<PartitionCache> cache_;
  std::vector<int> last_grouping_;
  int last_num_groups_ = 0;
};

}  // namespace gl
