#include "core/goldilocks.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/rng.h"
#include "common/stable_map.h"
#include "common/state_hash.h"
#include "core/virtual_cluster.h"
#include "graph/incremental.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {
namespace {

obs::Counter& PeeCapRejections() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "goldilocks.pee_cap_rejections", obs::MetricKind::kDeterministic);
  return c;
}

// Per-dimension packing ceiling: CPU and network stop at the PEE point,
// memory at its own headroom ceiling.
Resource CeilingFor(const Resource& capacity, const GoldilocksOptions& opts) {
  return Resource{.cpu = capacity.cpu * opts.pee_utilization,
                  .mem_gb = capacity.mem_gb * opts.memory_ceiling,
                  .net_mbps = capacity.net_mbps * opts.pee_utilization};
}

// During partitioning the network dimension is checked loosely: min-cut
// grouping makes most of a group's traffic internal (it never touches the
// NIC once colocated), so the exact NIC check is done afterwards on the
// *effective* demand. The relaxation only prevents absurdly network-heavy
// groups from forming in the first place.
constexpr double kPartitionNetRelax = 8.0;

std::uint64_t HashActiveMask(std::span<const std::uint8_t> active) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const auto a : active) {
    h ^= a;
    h *= 1099511628211ULL;
  }
  return h;
}

// Flow adjacency over container ids, used to compute how much of a
// container's traffic leaves its group.
struct FlowAdjacency {
  // peers[c] = (peer container id, positive flow weight).
  std::vector<std::vector<std::pair<int, double>>> peers;
  std::vector<double> total_flows GL_UNITS(count);
};

FlowAdjacency BuildFlowAdjacency(const Workload& workload) {
  FlowAdjacency adj;
  adj.peers.resize(workload.containers.size());
  adj.total_flows.assign(workload.containers.size(), 0.0);
  for (const auto& e : workload.edges) {
    if (e.flows <= 0.0) continue;
    const auto ia = static_cast<std::size_t>(e.a.value());
    const auto ib = static_cast<std::size_t>(e.b.value());
    adj.peers[ia].emplace_back(e.b.value(), e.flows);
    adj.peers[ib].emplace_back(e.a.value(), e.flows);
    adj.total_flows[ia] += e.flows;
    adj.total_flows[ib] += e.flows;
  }
  return adj;
}

// Membership stamps: `stamp[c] == generation` means c is in the current set.
class MembershipStamp {
 public:
  explicit MembershipStamp(std::size_t n) : stamp_(n, 0) {}
  void Begin(std::span<const ContainerId> members) {
    ++generation_;
    for (const auto c : members) {
      stamp_[static_cast<std::size_t>(c.value())] = generation_;
    }
  }
  [[nodiscard]] bool Contains(int container_value) const {
    return stamp_[static_cast<std::size_t>(container_value)] == generation_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t generation_ = 0;
};

// Effective demand of a group assuming its members are colocated: CPU and
// memory add up; each member's network demand is scaled by the fraction of
// its flow weight that crosses the group boundary (colocated chatter never
// reaches the NIC). Members with no modelled flows keep their full network
// demand — their traffic goes somewhere we cannot see.
Resource EffectiveGroupDemand(std::span<const ContainerId> members,
                              std::span<const Resource> demands,
                              const FlowAdjacency& adj,
                              MembershipStamp& stamp) {
  stamp.Begin(members);
  Resource out;
  for (const auto c : members) {
    const auto ci = static_cast<std::size_t>(c.value());
    const Resource& d = demands[ci];
    out.cpu += d.cpu;
    out.mem_gb += d.mem_gb;
    const double total GL_UNITS(count) = adj.total_flows[ci];
    if (total <= 0.0) {
      out.net_mbps += d.net_mbps;
      continue;
    }
    double external GL_UNITS(count) = 0.0;
    for (const auto& [peer, flows] : adj.peers[ci]) {
      if (!stamp.Contains(peer)) external += flows;
    }
    out.net_mbps += d.net_mbps * (external / total);
  }
  return out;
}

}  // namespace

struct GoldilocksScheduler::PartitionCache {
  const Workload* workload = nullptr;
  std::uint64_t active_hash = 0;
  int epochs_since_partition = 0;
  std::vector<std::vector<ContainerId>> groups;  // in locality order
  std::vector<std::string> paths;                // recursion path per group
  // Server each group landed on last epoch (stability across reuse).
  std::vector<ServerId> group_server;
};

GoldilocksScheduler::GoldilocksScheduler(GoldilocksOptions opts)
    : opts_(std::move(opts)), cache_(std::make_unique<PartitionCache>()) {}

GoldilocksScheduler::~GoldilocksScheduler() = default;

std::uint64_t GoldilocksScheduler::StateDigest() const {
  StateHasher h;
  h.MixU64(cache_->active_hash);
  h.MixI32(cache_->epochs_since_partition);
  h.MixU64(cache_->groups.size());
  for (const auto& group : cache_->groups) {
    h.MixU64(group.size());
    for (const auto c : group) h.MixId(c);
  }
  for (const auto& path : cache_->paths) {
    h.MixU64(path.size());
    for (const char ch : path) h.MixU64(static_cast<unsigned char>(ch));
  }
  for (const auto s : cache_->group_server) h.MixId(s);
  return h.digest();
}

std::vector<std::vector<ContainerId>> GoldilocksScheduler::PartitionContainers(
    const SchedulerInput& input) {
  const auto& topo = *input.topology;
  const Resource avg_cap = topo.average_server_capacity();
  const Resource ceiling = CeilingFor(avg_cap, opts_);
  const FlowAdjacency adj = BuildFlowAdjacency(*input.workload);
  MembershipStamp stamp(input.workload->containers.size());

  // Reuse the cached grouping when the container universe is unchanged, the
  // repartition interval has not elapsed, and no group outgrew a server.
  const std::uint64_t active_hash = HashActiveMask(input.active);
  const bool universe_unchanged = cache_->workload == input.workload &&
                                  cache_->active_hash == active_hash &&
                                  !cache_->groups.empty();
  if (universe_unchanged &&
      cache_->epochs_since_partition + 1 < opts_.repartition_interval) {
    // Correlated bursts swing group demands ±25% between epochs; migrating
    // everything every epoch to chase them defeats the purpose of epoch
    // caching (Sec. IV-C, migration cost). Keep the grouping unless some
    // group has drifted grossly past a server — placement spills moderate
    // overflow container-by-container.
    const Resource drift_limit = ceiling * 1.5;
    bool acceptable = true;
    for (const auto& group : cache_->groups) {
      if (!EffectiveGroupDemand(group, input.demands, adj, stamp)
               .FitsIn(drift_limit)) {
        acceptable = false;
        break;
      }
    }
    if (acceptable) {
      static obs::Counter& hits = obs::MetricsRegistry::Global().GetCounter(
          "goldilocks.partition_cache_hits", obs::MetricKind::kDeterministic);
      hits.Increment();
      ++cache_->epochs_since_partition;
      return cache_->groups;
    }
  }
  obs::TraceSpan span("goldilocks.partition",
                      static_cast<std::int64_t>(
                          input.workload->containers.size()));

  // --- full re-partition -----------------------------------------------------
  const ContainerGraph cg = BuildContainerGraph(
      *input.workload, input.demands, input.active, avg_cap);
  // Groups are sized against a margin-reduced ceiling so they survive
  // epoch-to-epoch demand growth without a full repartition.
  const Resource group_ceiling = ceiling * (1.0 - opts_.group_headroom);
  Resource relaxed = group_ceiling;
  relaxed.net_mbps *= kPartitionNetRelax;
  const auto fits = [&relaxed](const Resource& demand, int count) {
    (void)count;
    const bool ok = demand.FitsIn(relaxed);
    // Every "group too big for the PEE-capped ceiling" verdict forces
    // another bisection level — the count explains recursion depth.
    if (!ok) PeeCapRejections().Increment();
    return ok;
  };
  // Server-capacity units of a group: how many ceiling-fulls its demand is
  // worth (network relaxed as above). Guides proportional splits so the
  // final groups fill servers tightly.
  const auto units = [&relaxed](const Resource& demand) {
    double u = 0.0;
    if (relaxed.cpu > 0) u = std::max(u, demand.cpu / relaxed.cpu);
    if (relaxed.mem_gb > 0) u = std::max(u, demand.mem_gb / relaxed.mem_gb);
    if (relaxed.net_mbps > 0) {
      u = std::max(u, demand.net_mbps / relaxed.net_mbps);
    }
    return u;
  };
  std::vector<std::vector<ContainerId>> groups;
  std::vector<std::string> paths;
  // Per-container server of the grouping being repaired; empty unless an
  // incremental repair runs below. Lets the final groups inherit last
  // epoch's servers so the placement stability ceiling can actually hold
  // them in place — without it every repartition repacks from a blank
  // slate and even a repair that moved a handful of vertices migrates
  // most containers.
  std::vector<ServerId> prev_server_of;

  const bool can_repair = opts_.incremental_repartition &&
                          cache_->workload == input.workload &&
                          !cache_->groups.empty();
  if (can_repair) {
    // Repair the previous grouping instead of relabelling from scratch.
    // Vertices map to their old group index (or -1 if newly active).
    std::vector<int> container_to_old(
        input.workload->containers.size(), -1);
    for (std::size_t gi = 0; gi < cache_->groups.size(); ++gi) {
      for (const auto c : cache_->groups[gi]) {
        container_to_old[static_cast<std::size_t>(c.value())] =
            static_cast<int>(gi);
      }
    }
    if (cache_->group_server.size() == cache_->groups.size()) {
      prev_server_of.assign(input.workload->containers.size(),
                            ServerId::invalid());
      for (std::size_t gi = 0; gi < cache_->groups.size(); ++gi) {
        for (const auto c : cache_->groups[gi]) {
          prev_server_of[static_cast<std::size_t>(c.value())] =
              cache_->group_server[gi];
        }
      }
    }
    std::vector<int> previous(
        static_cast<std::size_t>(cg.graph.num_vertices()), -1);
    for (VertexIndex v = 0; v < cg.graph.num_vertices(); ++v) {
      previous[static_cast<std::size_t>(v)] = container_to_old[
          static_cast<std::size_t>(
              cg.vertex_to_container[static_cast<std::size_t>(v)].value())];
    }
    IncrementalOptions iopts;
    iopts.partition = opts_.partition;
    const auto repaired =
        IncrementalRepartition(cg.graph, previous, fits, iopts);

    // Rebuild member lists; each new group inherits the recursion path of
    // the old group contributing most of its members (fresh groups sort
    // last via a '~' sentinel, which is > '0'/'1').
    groups.assign(static_cast<std::size_t>(repaired.num_groups), {});
    std::vector<std::unordered_map<int, int>> votes(
        static_cast<std::size_t>(repaired.num_groups));
    for (VertexIndex v = 0; v < cg.graph.num_vertices(); ++v) {
      const int gid = repaired.group_of[static_cast<std::size_t>(v)];
      groups[static_cast<std::size_t>(gid)].push_back(
          cg.vertex_to_container[static_cast<std::size_t>(v)]);
      const int old = previous[static_cast<std::size_t>(v)];
      if (old >= 0) ++votes[static_cast<std::size_t>(gid)][old];
    }
    paths.assign(static_cast<std::size_t>(repaired.num_groups), {});
    for (int gid = 0; gid < repaired.num_groups; ++gid) {
      // Sorted snapshot: vote ties must resolve to the lowest old group id,
      // not whichever hash bucket comes first.
      int best_old = -1, best_votes = 0;
      const auto group_votes =
          SortedItems(votes[static_cast<std::size_t>(gid)]);
      for (const auto& [old, n] : group_votes) {
        if (n > best_votes) {
          best_votes = n;
          best_old = old;
        }
      }
      paths[static_cast<std::size_t>(gid)] =
          best_old >= 0 ? cache_->paths[static_cast<std::size_t>(best_old)]
                        : std::string("~") + std::to_string(gid);
    }
    // Locality order: stable sort by inherited path.
    std::vector<std::size_t> idx(groups.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                 std::size_t b) {
      return paths[a] < paths[b];
    });
    std::vector<std::vector<ContainerId>> g2;
    std::vector<std::string> p2;
    g2.reserve(groups.size());
    p2.reserve(paths.size());
    for (const auto i : idx) {
      g2.push_back(std::move(groups[i]));
      p2.push_back(std::move(paths[i]));
    }
    groups = std::move(g2);
    paths = std::move(p2);
  } else {
    const RecursivePartitionResult part =
        RecursivePartition(cg.graph, fits, opts_.partition, units);

    // Groups in locality order, as container-id lists.
    const std::vector<int> order = GroupsInLocalityOrder(part);
    std::vector<int> rank(static_cast<std::size_t>(part.num_groups));
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    }
    groups.assign(static_cast<std::size_t>(part.num_groups), {});
    paths.assign(static_cast<std::size_t>(part.num_groups), {});
    for (VertexIndex v = 0; v < cg.graph.num_vertices(); ++v) {
      const int g = part.group_of[static_cast<std::size_t>(v)];
      groups[static_cast<std::size_t>(rank[static_cast<std::size_t>(g)])]
          .push_back(cg.vertex_to_container[static_cast<std::size_t>(v)]);
    }
    for (int g = 0; g < part.num_groups; ++g) {
      paths[static_cast<std::size_t>(rank[static_cast<std::size_t>(g)])] =
          part.group_path[static_cast<std::size_t>(g)];
    }
  }

  // --- refinement: enforce the exact ceiling on *effective* demand -----------
  // A group that passed the relaxed partition check may still exceed the
  // NIC (or, after demand growth, CPU) once colocated; bisect it further.
  static obs::Counter& refine_bisects =
      obs::MetricsRegistry::Global().GetCounter(
          "goldilocks.refine_bisections", obs::MetricKind::kDeterministic);
  for (std::size_t gi = 0; gi < groups.size();) {
    const Resource eff =
        EffectiveGroupDemand(groups[gi], input.demands, adj, stamp);
    if (eff.FitsIn(group_ceiling) || groups[gi].size() <= 1) {
      ++gi;
      continue;
    }
    // Bisect the induced subgraph of this group.
    std::vector<VertexIndex> verts;
    verts.reserve(groups[gi].size());
    for (const auto c : groups[gi]) {
      verts.push_back(
          cg.container_to_vertex[static_cast<std::size_t>(c.value())]);
    }
    const Graph sub = cg.graph.InducedSubgraph(verts);
    PartitionOptions popts = opts_.partition;
    popts.seed ^= 0x9e3779b97f4a7c15ULL + gi;
    // Carve off one ceiling-full per split so the survivor fills a server.
    const double over =
        std::max({eff.cpu / std::max(group_ceiling.cpu, 1e-9),
                  eff.mem_gb / std::max(group_ceiling.mem_gb, 1e-9),
                  eff.net_mbps / std::max(group_ceiling.net_mbps, 1e-9)});
    const double fraction =
        std::clamp(std::ceil(over / 2.0) / std::max(over, 1.0 + 1e-9), 0.25,
                   0.75);
    refine_bisects.Increment();
    const Bisection bis = Bisect(sub, popts, fraction);
    std::vector<ContainerId> left, right;
    for (std::size_t v = 0; v < groups[gi].size(); ++v) {
      (bis.side[v] == 0 ? left : right).push_back(groups[gi][v]);
    }
    if (left.empty() || right.empty()) {
      // Degenerate bisection: force an arbitrary split so we terminate.
      left.assign(groups[gi].begin(),
                  groups[gi].begin() +
                      static_cast<std::ptrdiff_t>(groups[gi].size() / 2));
      right.assign(groups[gi].begin() +
                       static_cast<std::ptrdiff_t>(groups[gi].size() / 2),
                   groups[gi].end());
    }
    const std::string base_path = paths[gi];
    groups[gi] = std::move(left);
    paths[gi] = base_path + '0';
    groups.insert(groups.begin() + static_cast<std::ptrdiff_t>(gi) + 1,
                  std::move(right));
    paths.insert(paths.begin() + static_cast<std::ptrdiff_t>(gi) + 1,
                 base_path + '1');
    // Re-check the (smaller) group at gi on the next loop iteration.
  }

  // --- merge siblings that jointly fit (halving leaves servers half-empty) ---
  // Groups carrying replicas of the same service must stay apart (the whole
  // point of the negative edges), so merges that reunite a replica set are
  // rejected.
  auto replica_sets_of = [&](const std::vector<ContainerId>& g) {
    std::vector<GroupId> sets;
    for (const auto c : g) {
      const auto rs = input.workload->containers[
          static_cast<std::size_t>(c.value())].replica_set;
      if (rs.valid()) sets.push_back(rs);
    }
    std::sort(sets.begin(), sets.end());
    sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
    return sets;
  };
  auto share_replica_set = [&](const std::vector<ContainerId>& a,
                               const std::vector<ContainerId>& b) {
    const auto sa = replica_sets_of(a);
    if (sa.empty()) return false;
    const auto sb = replica_sets_of(b);
    for (const auto s : sa) {
      if (std::binary_search(sb.begin(), sb.end(), s)) return true;
    }
    return false;
  };
  if (opts_.merge_sibling_groups) {
    bool merged = true;
    while (merged) {
      merged = false;
      for (std::size_t i = 0; i + 1 < groups.size(); ++i) {
        const std::string& pa = paths[i];
        const std::string& pb = paths[i + 1];
        const bool siblings =
            pa.size() == pb.size() && !pa.empty() &&
            pa.compare(0, pa.size() - 1, pb, 0, pb.size() - 1) == 0;
        if (!siblings) continue;
        if (share_replica_set(groups[i], groups[i + 1])) continue;
        std::vector<ContainerId> combined = groups[i];
        combined.insert(combined.end(), groups[i + 1].begin(),
                        groups[i + 1].end());
        if (!EffectiveGroupDemand(combined, input.demands, adj, stamp)
                 .FitsIn(group_ceiling)) {
          continue;
        }
        static obs::Counter& merges = obs::MetricsRegistry::Global().GetCounter(
            "goldilocks.sibling_merges", obs::MetricKind::kDeterministic);
        merges.Increment();
        groups[i] = std::move(combined);
        paths[i] = pa.substr(0, pa.size() - 1);
        groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        paths.erase(paths.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        merged = true;
        break;
      }
    }
  }

  cache_->workload = input.workload;
  cache_->active_hash = active_hash;
  cache_->epochs_since_partition = 0;
  cache_->groups = groups;
  cache_->paths = paths;
  cache_->group_server.assign(groups.size(), ServerId::invalid());
  if (!prev_server_of.empty()) {
    // Majority vote over members' previous servers (ties to the lowest
    // server id). Placement treats the result as a preference, not a
    // booking: if two groups inherit one server, whichever places first
    // keeps it and the other falls through to first-fit.
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      std::unordered_map<int, int> votes;
      for (const auto c : groups[gi]) {
        const ServerId s = prev_server_of[static_cast<std::size_t>(c.value())];
        if (s.valid()) ++votes[s.value()];
      }
      int best_server = -1;
      int best_votes = 0;
      for (const auto& [server, n] : SortedItems(votes)) {
        if (n > best_votes) {
          best_votes = n;
          best_server = server;
        }
      }
      if (best_server >= 0) cache_->group_server[gi] = ServerId(best_server);
    }
  }
  return groups;
}

Placement GoldilocksScheduler::AssignGroupsSymmetric(
    const SchedulerInput& input,
    const std::vector<std::vector<ContainerId>>& groups) const {
  const auto& topo = *input.topology;
  PackingState state(topo);
  Placement p;
  p.server_of.assign(input.workload->containers.size(), ServerId::invalid());

  const FlowAdjacency adj = BuildFlowAdjacency(*input.workload);
  MembershipStamp stamp(input.workload->containers.size());

  std::vector<ServerId> server_order = topo.ServersUnder(topo.root());

  std::vector<std::size_t> group_order(groups.size());
  std::iota(group_order.begin(), group_order.end(), 0);
  if (!opts_.locality_order) {
    // Ablation: identical groups, identical packing ceiling, but the
    // recursion-tree adjacency is destroyed by a deterministic shuffle.
    Rng rng(opts_.partition.seed ^ 0xab1a7e);
    for (std::size_t i = group_order.size(); i > 1; --i) {
      std::swap(group_order[i - 1], group_order[rng.NextBelow(i)]);
    }
  }

  const bool use_preferred =
      cache_->group_server.size() == groups.size();

  // Fault domains (Sec. IV-C): groups carrying the same replica set must
  // land in different racks when possible, different servers at minimum.
  std::vector<std::vector<GroupId>> group_sets(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const auto c : groups[g]) {
      const auto rs = input.workload->containers[
          static_cast<std::size_t>(c.value())].replica_set;
      if (rs.valid()) group_sets[g].push_back(rs);
    }
    std::sort(group_sets[g].begin(), group_sets[g].end());
    group_sets[g].erase(
        std::unique(group_sets[g].begin(), group_sets[g].end()),
        group_sets[g].end());
  }
  std::unordered_map<int, std::vector<GroupId>> rack_sets;    // rack node →
  std::unordered_map<int, std::vector<GroupId>> server_sets;  // server id →
  auto domain_conflict = [](const std::vector<GroupId>& a,
                            const std::vector<GroupId>& b) {
    for (const auto s : a) {
      if (std::binary_search(b.begin(), b.end(), s)) return true;
    }
    return false;
  };
  // pass 0: rack-level anti-affinity; pass 1: server-level; pass 2: none.
  auto allowed = [&](std::size_t gi, ServerId s, int pass) {
    if (group_sets[gi].empty() || pass >= 2) return true;
    const auto sit = server_sets.find(s.value());
    if (sit != server_sets.end() &&
        domain_conflict(group_sets[gi], sit->second)) {
      return false;
    }
    if (pass == 0) {
      const NodeId rack = topo.AncestorAt(topo.server_node(s), 1);
      const auto rit = rack_sets.find(rack.value());
      if (rit != rack_sets.end() &&
          domain_conflict(group_sets[gi], rit->second)) {
        return false;
      }
    }
    return true;
  };

  auto place_on = [&](const std::vector<ContainerId>& group, ServerId s,
                      std::size_t gi) {
    // Book the *effective* demand: colocated traffic never hits the NIC.
    // CPU and memory are booked per container (exact).
    const Resource eff =
        EffectiveGroupDemand(group, input.demands, adj, stamp);
    state.Add(s, eff);
    for (const auto c : group) {
      p.server_of[static_cast<std::size_t>(c.value())] = s;
    }
    if (use_preferred) cache_->group_server[gi] = s;
    if (!group_sets[gi].empty()) {
      auto& ss = server_sets[s.value()];
      ss.insert(ss.end(), group_sets[gi].begin(), group_sets[gi].end());
      std::sort(ss.begin(), ss.end());
      const NodeId rack = topo.AncestorAt(topo.server_node(s), 1);
      auto& rs = rack_sets[rack.value()];
      rs.insert(rs.end(), group_sets[gi].begin(), group_sets[gi].end());
      std::sort(rs.begin(), rs.end());
    }
  };

  std::size_t cursor = 0;  // next server slot in topology order
  for (const auto gi : group_order) {
    const auto& group = groups[gi];
    if (group.empty()) continue;
    const Resource eff =
        EffectiveGroupDemand(group, input.demands, adj, stamp);

    // Stability: keep the group on last epoch's server while the server
    // stays below the stability ceiling — moderate growth is exactly what
    // the PEE headroom is for; migrating to restore the 70% target would
    // cost more than it saves (Sec. IV-C). Memory does not drift, so only
    // CPU/network are capped.
    if (use_preferred && cache_->group_server[gi].valid()) {
      const ServerId prev = cache_->group_server[gi];
      const Resource& cap = topo.server_capacity(prev);
      const Resource stay_limit{
          .cpu = cap.cpu * opts_.stability_ceiling,
          .mem_gb = cap.mem_gb,
          .net_mbps = cap.net_mbps * opts_.stability_ceiling};
      if ((state.load(prev) + eff).FitsIn(stay_limit) &&
          allowed(gi, prev, 0)) {
        place_on(group, prev, gi);
        continue;
      }
    }

    // Walk servers from the cursor (left-most first-fit), relaxing the
    // fault-domain constraint pass by pass only if nothing qualifies.
    ServerId chosen = ServerId::invalid();
    for (int pass = 0; pass < 3 && !chosen.valid(); ++pass) {
      for (std::size_t k = 0; k < server_order.size(); ++k) {
        const ServerId s = server_order[(cursor + k) % server_order.size()];
        if (!allowed(gi, s, pass)) continue;
        const Resource ceiling = CeilingFor(topo.server_capacity(s), opts_);
        if ((state.load(s) + eff).FitsIn(ceiling)) {
          chosen = s;
          cursor = (cursor + k) % server_order.size();
          break;
        }
      }
      if (group_sets[gi].empty()) break;  // passes only differ for replicas
    }
    if (chosen.valid()) {
      place_on(group, chosen, gi);
      continue;
    }
    // The group fits no single server (demands grew since partitioning, or
    // an oversized singleton): spill container-by-container, first at the
    // PEE ceiling, then at full capacity as a last resort. Spilled
    // containers are alone, so their full network demand applies.
    for (const auto c : group) {
      const auto& d = input.demands[static_cast<std::size_t>(c.value())];
      ServerId fallback = ServerId::invalid();
      for (std::size_t k = 0;
           k < server_order.size() && !fallback.valid(); ++k) {
        const ServerId s = server_order[(cursor + k) % server_order.size()];
        const Resource ceiling = CeilingFor(topo.server_capacity(s), opts_);
        if ((state.load(s) + d).FitsIn(ceiling)) fallback = s;
      }
      for (std::size_t k = 0;
           k < server_order.size() && !fallback.valid(); ++k) {
        const ServerId s = server_order[(cursor + k) % server_order.size()];
        if (state.Fits(s, d, 1.0)) fallback = s;
      }
      if (fallback.valid()) {
        state.Add(fallback, d);
        p.server_of[static_cast<std::size_t>(c.value())] = fallback;
      }
    }
  }
  return p;
}

Placement GoldilocksScheduler::Place(const SchedulerInput& input) {
  GOLDILOCKS_CHECK(input.workload != nullptr && input.topology != nullptr);
  const auto groups = PartitionContainers(input);

  // Record the grouping for inspection (Fig. 7).
  last_grouping_.assign(input.workload->containers.size(), -1);
  last_num_groups_ = static_cast<int>(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const auto c : groups[g]) {
      last_grouping_[static_cast<std::size_t>(c.value())] =
          static_cast<int>(g);
    }
  }

  if (opts_.use_virtual_clusters) {
    obs::TraceSpan vc_span("goldilocks.vc_reserve",
                           static_cast<std::int64_t>(groups.size()));
    VirtualClusterOptions vc_opts;
    vc_opts.pee_utilization = opts_.pee_utilization;
    vc_opts.memory_ceiling = opts_.memory_ceiling;
    VirtualClusterPlacer placer(*input.topology, vc_opts);
    return placer.PlaceGroups(groups, input.demands,
                              input.workload->containers.size());
  }
  obs::TraceSpan assign_span("goldilocks.assign_symmetric",
                             static_cast<std::int64_t>(groups.size()));
  return AssignGroupsSymmetric(input, groups);
}

}  // namespace gl
