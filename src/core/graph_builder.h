// Construction of the two graphs of Sec. III-A.
//
//   * Container graph — one vertex per *active* container, weighted by its
//     demand vector (balance weight: demand normalised against the average
//     server capacity); edges weighted by distinct-flow counts. Replicas
//     (containers sharing a replica_set) get a negative anti-affinity edge
//     so min-cut separates them into different fault domains (Sec. IV-C).
//   * Capacity graph — one vertex per server, weighted by its capacity;
//     edge weights are shortest-path lengths in the DCN topology. Goldilocks
//     proper navigates the Topology directly (the capacity graph's max-cut
//     substructures are exactly the topology subtrees), but the explicit
//     graph is exposed for analysis and tests.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"
#include "topology/topology.h"
#include "workload/container.h"

namespace gl {

struct ContainerGraph {
  Graph graph;
  // Graph vertex index → ContainerId.
  std::vector<ContainerId> vertex_to_container;
  // ContainerId value → vertex index, -1 if inactive.
  std::vector<VertexIndex> container_to_vertex;
};

struct ContainerGraphOptions {
  // Edge weight used to push replicas apart; magnitude should exceed any
  // legitimate flow count so the cut always prefers separating replicas.
  double replica_anti_affinity = -1.0e5;
};

ContainerGraph BuildContainerGraph(const Workload& workload,
                                   std::span<const Resource> demands,
                                   std::span<const std::uint8_t> active,
                                   const Resource& reference_capacity,
                                   const ContainerGraphOptions& opts = {});

// Capacity graph over all servers; edge weight = hop distance. Quadratic in
// the number of servers — intended for testbed-scale analysis (Fig. 4).
Graph BuildCapacityGraph(const Topology& topo);

}  // namespace gl
