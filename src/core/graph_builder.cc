#include "core/graph_builder.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {

ContainerGraph BuildContainerGraph(const Workload& workload,
                                   std::span<const Resource> demands,
                                   std::span<const std::uint8_t> active,
                                   const Resource& reference_capacity,
                                   const ContainerGraphOptions& opts) {
  GOLDILOCKS_CHECK(demands.size() == workload.containers.size());
  GOLDILOCKS_CHECK(active.size() == workload.containers.size());
  obs::TraceSpan span("graph.build",
                      static_cast<std::int64_t>(workload.containers.size()));
  ContainerGraph cg;
  cg.container_to_vertex.assign(workload.containers.size(), -1);
  cg.graph.Reserve(static_cast<VertexIndex>(workload.containers.size()));
  cg.vertex_to_container.reserve(workload.containers.size());

  for (const auto& c : workload.containers) {
    const auto i = static_cast<std::size_t>(c.id.value());
    if (!active[i]) continue;
    const VertexIndex v = cg.graph.AddVertex(
        demands[i], demands[i].NormalizedL1(reference_capacity));
    cg.container_to_vertex[i] = v;
    cg.vertex_to_container.push_back(c.id);
  }

  for (const auto& e : workload.edges) {
    const auto va =
        cg.container_to_vertex[static_cast<std::size_t>(e.a.value())];
    const auto vb =
        cg.container_to_vertex[static_cast<std::size_t>(e.b.value())];
    if (va >= 0 && vb >= 0) cg.graph.AddEdge(va, vb, e.flows);
  }

  // Replica anti-affinity: one negative clique per replica set. Flat
  // (set, vertex) pairs, stably sorted by set id: edge insertion order
  // shapes adjacency lists, which the partitioner's tie-breaking sees — it
  // must not follow hash-bucket order, and the stable sort keeps members in
  // container order within each set, same as the sorted-map snapshot this
  // replaces.
  std::vector<std::pair<GroupId, VertexIndex>> replica_members;
  for (const auto& c : workload.containers) {
    const auto i = static_cast<std::size_t>(c.id.value());
    if (!active[i] || !c.replica_set.valid()) continue;
    replica_members.emplace_back(c.replica_set, cg.container_to_vertex[i]);
  }
  std::stable_sort(replica_members.begin(), replica_members.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::uint64_t anti_affinity_edges = 0;
  for (std::size_t lo = 0; lo < replica_members.size();) {
    std::size_t hi = lo + 1;
    while (hi < replica_members.size() &&
           replica_members[hi].first == replica_members[lo].first) {
      ++hi;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = i + 1; j < hi; ++j) {
        cg.graph.AddEdge(replica_members[i].second, replica_members[j].second,
                         opts.replica_anti_affinity);
        ++anti_affinity_edges;
      }
    }
    lo = hi;
  }
  static obs::Counter& vertices = obs::MetricsRegistry::Global().GetCounter(
      "graph.vertices_built", obs::MetricKind::kDeterministic);
  static obs::Counter& edges = obs::MetricsRegistry::Global().GetCounter(
      "graph.anti_affinity_edges", obs::MetricKind::kDeterministic);
  vertices.Add(static_cast<std::uint64_t>(cg.graph.num_vertices()));
  edges.Add(anti_affinity_edges);
  return cg;
}

Graph BuildCapacityGraph(const Topology& topo) {
  Graph g;
  for (int s = 0; s < topo.num_servers(); ++s) {
    const auto& cap = topo.server_capacity(ServerId{s});
    g.AddVertex(cap, 1.0);
  }
  for (int a = 0; a < topo.num_servers(); ++a) {
    for (int b = a + 1; b < topo.num_servers(); ++b) {
      g.AddEdge(a, b,
                static_cast<double>(topo.HopDistance(ServerId{a},
                                                     ServerId{b})));
    }
  }
  return g;
}

}  // namespace gl
