// Name → Scheduler construction shared by the CLI tools (gl_audit,
// gl_replay) and the seed-replay tests, so "every scheduler" means the same
// set everywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "schedulers/scheduler.h"

namespace gl {

// The recognised scheduler names, in canonical (bench) order:
// goldilocks, mpp, borg, epvm, rc, random.
[[nodiscard]] const std::vector<std::string>& NamedSchedulers();

// Builds the named scheduler, or nullptr for an unknown name. `pee` is the
// PEE packing ceiling for policies that honour one; `seed` feeds the
// stochastic policies (Random). `partition_threads` fans out Goldilocks'
// recursive bipartitioning (1 = serial; results are bit-identical at every
// value — DESIGN.md §9); other policies ignore it.
[[nodiscard]] std::unique_ptr<Scheduler> MakeNamedScheduler(
    const std::string& name, double pee = 0.70, std::uint64_t seed = 0xfeed,
    int partition_threads = 1);

}  // namespace gl
