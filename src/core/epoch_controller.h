// Epoch controller — the management node of Sec. V.
//
// The paper's deployment has a distinct management node that measures
// utilization, runs the placement algorithm at each epoch boundary, and
// orchestrates the CRIU checkpoint/restore moves that realize the new
// placement. This class is that control loop as a library: feed it the
// epoch's (measured or predicted) demands, get back the placement *and* the
// ordered migration plan, plus bookkeeping of what the transition costs.
//
// It is scheduler-agnostic: Goldilocks is the intended brain, but any
// Scheduler plugs in, which is how the examples compare transition costs
// across policies.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "common/state_hash.h"
#include "schedulers/scheduler.h"
#include "sim/migration_planner.h"

namespace gl {

struct EpochDecision {
  int epoch = 0;
  Placement placement;
  MigrationPlan plan;       // how to get there from the previous epoch
  int containers_placed = 0;
  int containers_started = 0;  // new this epoch (no migration needed)
  int containers_stopped = 0;  // gone this epoch
};

class EpochController {
 public:
  EpochController(std::unique_ptr<Scheduler> scheduler, const Topology& topo,
                  MigrationPlannerOptions planner_opts = {});

  // Runs one epoch: schedules the active containers and plans the moves
  // from the previous epoch's placement.
  EpochDecision Step(const Workload& workload,
                     std::span<const Resource> demands,
                     std::span<const std::uint8_t> active);

  // Opt-in invariant audit (src/analysis): every Step() additionally runs
  // the InvariantAuditor over the fresh placement, the topology and its
  // bandwidth reservations. Findings accumulate in audit_report(); with
  // `fail_fast` any *error* aborts via GOLDILOCKS_CHECK — the management
  // node must never roll out a placement it knows is corrupt.
  void EnableAudit(AuditOptions opts = {}, bool fail_fast = false);
  [[nodiscard]] const AuditReport& audit_report() const {
    return audit_report_;
  }

  // Opt-in reproducibility gate (common/state_hash.h): every Step()
  // additionally records a per-epoch digest of the placement, the implied
  // server loads, the migration plan and the scheduler's RNG cursors. Two
  // same-seed runs must yield identical streams; tools/gl_replay diffs them
  // and names the first divergent epoch and subsystem.
  void EnableStateHash() { hash_ = true; }
  [[nodiscard]] const std::vector<EpochStateHash>& state_hashes() const {
    return state_hashes_;
  }

  [[nodiscard]] const Placement& current_placement() const {
    return current_;
  }
  [[nodiscard]] int epochs_run() const { return epoch_; }
  // Cumulative transition cost over all epochs so far.
  [[nodiscard]] double total_migration_makespan_ms() const {
    return total_makespan_ms_;
  }
  [[nodiscard]] double total_image_gb() const { return total_image_gb_; }

 private:
  std::unique_ptr<Scheduler> scheduler_;
  const Topology& topo_;
  MigrationPlannerOptions planner_opts_;
  Placement current_;
  int epoch_ = 0;
  double total_makespan_ms_ GL_UNITS(ms) = 0.0;
  double total_image_gb_ GL_UNITS(bytes) = 0.0;
  bool audit_ = false;
  bool audit_fail_fast_ = false;
  AuditOptions audit_opts_;
  AuditReport audit_report_;
  bool hash_ = false;
  std::vector<EpochStateHash> state_hashes_;
};

}  // namespace gl
