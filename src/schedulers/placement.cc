#include "schedulers/placement.h"

#include <algorithm>

#include "common/check.h"

namespace gl {

int Placement::num_placed() const {
  int n = 0;
  for (const auto s : server_of) {
    if (s.valid()) ++n;
  }
  return n;
}

int Placement::NumActiveServers() const {
  std::vector<ServerId> servers;
  servers.reserve(server_of.size());
  for (const auto s : server_of) {
    if (s.valid()) servers.push_back(s);
  }
  std::sort(servers.begin(), servers.end());
  const auto end = std::unique(servers.begin(), servers.end());
  return static_cast<int>(end - servers.begin());
}

int Placement::MigrationsFrom(const Placement& before) const {
  int migrations = 0;
  const std::size_t n = std::min(server_of.size(), before.server_of.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (server_of[i].valid() && before.server_of[i].valid() &&
        server_of[i] != before.server_of[i]) {
      ++migrations;
    }
  }
  return migrations;
}

std::vector<Resource> ServerLoads(const Placement& p,
                                  std::span<const Resource> demands,
                                  int num_servers) {
  std::vector<Resource> loads(static_cast<std::size_t>(num_servers));
  const std::size_t n = std::min(p.server_of.size(), demands.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = p.server_of[i];
    if (s.valid()) {
      GOLDILOCKS_CHECK(s.value() < num_servers);
      loads[static_cast<std::size_t>(s.value())] += demands[i];
    }
  }
  return loads;
}

PackingState::PackingState(const Topology& topo)
    : topo_(topo),
      loads_(static_cast<std::size_t>(topo.num_servers())) {}

bool PackingState::Fits(ServerId s, const Resource& demand,
                        double max_utilization GL_UNITS(dimensionless)) const {
  const Resource after = loads_[static_cast<std::size_t>(s.value())] + demand;
  return after.FitsIn(topo_.server_capacity(s) * max_utilization);
}

void PackingState::Add(ServerId s, const Resource& demand) {
  loads_[static_cast<std::size_t>(s.value())] += demand;
}

void PackingState::Remove(ServerId s, const Resource& demand) {
  loads_[static_cast<std::size_t>(s.value())] -= demand;
}

const Resource& PackingState::capacity(ServerId s) const {
  return topo_.server_capacity(s);
}

double PackingState::Utilization(ServerId s) const GL_UNITS(dimensionless) {
  return loads_[static_cast<std::size_t>(s.value())].DominantShare(
      topo_.server_capacity(s));
}

}  // namespace gl
