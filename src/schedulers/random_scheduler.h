// Random feasible placement. Not a paper baseline — used by the ablation
// benches as the no-intelligence lower bound and by tests as a fuzzing
// opponent (any invariant the simulator holds must hold under arbitrary
// feasible placements).
#pragma once

#include "common/rng.h"
#include "schedulers/scheduler.h"

namespace gl {

class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 0xfeed,
                           double max_utilization = 0.95)
      : rng_(seed), max_utilization_(max_utilization) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  Placement Place(const SchedulerInput& input) override;
  [[nodiscard]] std::uint64_t StateDigest() const override {
    return rng_.StateHash();
  }

 private:
  std::string name_ = "Random";
  Rng rng_;
  double max_utilization_;
};

}  // namespace gl
