// E-PVM [17]: opportunity-cost job assignment.
//
// Two modes:
//  * kLeastUtilized — the paper's description ("containers are placed on the
//    least utilized machines"): each container goes to the machine with the
//    lowest dominant-share utilization. Spreads load across the whole fleet
//    (every server stays on) — good task completion times, no power saving.
//    This is the baseline used by every paper experiment.
//  * kOpportunityCost — Amir et al.'s actual marginal-cost rule: the cost of
//    a machine is Σ_dims a^utilization, and a container goes wherever it
//    increases that cost least. Exponential cost makes high-utilization
//    machines expensive in *every* dimension at once. Exposed as an
//    extension and exercised by the ablation benches.
#pragma once

#include "schedulers/scheduler.h"

namespace gl {

enum class EPvmMode {
  kLeastUtilized,
  kOpportunityCost,
};

class EPvmScheduler final : public Scheduler {
 public:
  explicit EPvmScheduler(double max_utilization GL_UNITS(dimensionless) = 1.0,
                         EPvmMode mode = EPvmMode::kLeastUtilized,
                         double cost_base GL_UNITS(dimensionless) = 32.0)
      : max_utilization_(max_utilization),
        mode_(mode),
        cost_base_(cost_base) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  Placement Place(const SchedulerInput& input) override;

 private:
  Placement PlaceLeastUtilized(const SchedulerInput& input) const;
  Placement PlaceOpportunityCost(const SchedulerInput& input) const;

  std::string name_ = "E-PVM";
  double max_utilization_ GL_UNITS(dimensionless);
  EPvmMode mode_;
  double cost_base_ GL_UNITS(dimensionless);
};

}  // namespace gl
