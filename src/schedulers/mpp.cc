#include "schedulers/mpp.h"

#include <algorithm>
#include <vector>

namespace gl {

Placement MppScheduler::Place(const SchedulerInput& input) {
  GOLDILOCKS_CHECK(input.workload != nullptr && input.topology != nullptr);
  const auto& topo = *input.topology;
  PackingState state(topo);
  Placement p;
  p.server_of.assign(input.workload->containers.size(), ServerId::invalid());

  // First Fit *Decreasing*: big items first.
  const Resource ref = topo.average_server_capacity();
  std::vector<int> order;
  for (const auto& c : input.workload->containers) {
    if (input.IsActive(c.id)) order.push_back(c.id.value());
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return input.demands[static_cast<std::size_t>(a)].NormalizedL1(ref) >
           input.demands[static_cast<std::size_t>(b)].NormalizedL1(ref);
  });

  // Only servers that already host something ("open") plus one fresh server
  // need to be scored; every closed server is identical to the first one.
  std::vector<int> open;
  int next_fresh = 0;

  auto power_delta_per_util = [&](ServerId s, const Resource& d) {
    const double u_before GL_UNITS(dimensionless) = state.Utilization(s);
    const Resource after = state.load(s) + d;
    const double u_after GL_UNITS(dimensionless) =
        after.DominantShare(topo.server_capacity(s));
    const double p_before GL_UNITS(watts) =
        state.IsEmpty(s) ? ServerPowerModel::ServerOff() : power_.Power(u_before);
    const double p_after GL_UNITS(watts) = power_.Power(u_after);
    const double du GL_UNITS(dimensionless) =
        std::max(1e-9, u_after - u_before);
    return (p_after - p_before) / du;
  };

  for (const int ci : order) {
    const auto& demand = input.demands[static_cast<std::size_t>(ci)];
    ServerId best = ServerId::invalid();
    double best_score GL_UNITS(watts) = 0.0;
    for (const int s : open) {
      const ServerId sid{s};
      if (!state.Fits(sid, demand, max_utilization_)) continue;
      const double score GL_UNITS(watts) = power_delta_per_util(sid, demand);
      if (!best.valid() || score < best_score) {
        best = sid;
        best_score = score;
      }
    }
    if (next_fresh < topo.num_servers()) {
      const ServerId fresh{next_fresh};
      if (state.Fits(fresh, demand, max_utilization_)) {
        const double score GL_UNITS(watts) = power_delta_per_util(fresh, demand);
        if (!best.valid() || score < best_score) {
          best = fresh;
          best_score = score;
        }
      }
    }
    if (!best.valid()) {
      // Nothing fits under the 95% packing target: spill at full capacity
      // rather than rejecting (the target is a goal, not an admission rule).
      for (const int s : open) {
        const ServerId sid{s};
        if (state.Fits(sid, demand, 1.0)) {
          best = sid;
          break;
        }
      }
    }
    if (!best.valid()) continue;  // admission failure
    if (best.value() == next_fresh) {
      open.push_back(next_fresh);
      ++next_fresh;
    }
    state.Add(best, demand);
    p.server_of[static_cast<std::size_t>(ci)] = best;
  }
  return p;
}

}  // namespace gl
