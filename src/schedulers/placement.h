// Container → server assignments and the placement bookkeeping shared by all
// scheduling policies.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "common/resource.h"
#include "topology/topology.h"

namespace gl {

struct Placement {
  // Indexed by ContainerId; invalid() = not placed (inactive container or
  // admission failure).
  std::vector<ServerId> server_of;

  [[nodiscard]] ServerId of(ContainerId c) const {
    const auto i = static_cast<std::size_t>(c.value());
    return i < server_of.size() ? server_of[i] : ServerId::invalid();
  }
  [[nodiscard]] int num_placed() const;
  [[nodiscard]] int NumActiveServers() const;
  // Containers placed on a different server than in `before` (newly placed
  // containers do not count; removed ones do not count).
  [[nodiscard]] int MigrationsFrom(const Placement& before) const;
};

// Aggregate per-server loads for a placement.
std::vector<Resource> ServerLoads(const Placement& p,
                                  std::span<const Resource> demands,
                                  int num_servers);

// Mutable packing state used while a policy assigns containers one by one.
class PackingState {
 public:
  explicit PackingState(const Topology& topo);

  // True if `demand` fits on `s` with every dimension at most
  // `max_utilization` of capacity.
  [[nodiscard]] bool Fits(ServerId s, const Resource& demand,
                          double max_utilization GL_UNITS(dimensionless)) const;
  void Add(ServerId s, const Resource& demand);
  void Remove(ServerId s, const Resource& demand);

  [[nodiscard]] const Resource& load(ServerId s) const {
    return loads_[static_cast<std::size_t>(s.value())];
  }
  [[nodiscard]] const Resource& capacity(ServerId s) const;
  // Dominant-share utilization of the server.
  [[nodiscard]] double Utilization(ServerId s) const GL_UNITS(dimensionless);
  [[nodiscard]] bool IsEmpty(ServerId s) const {
    return loads_[static_cast<std::size_t>(s.value())].IsZero();
  }
  [[nodiscard]] int num_servers() const {
    return static_cast<int>(loads_.size());
  }

 private:
  const Topology& topo_;
  std::vector<Resource> loads_;
};

}  // namespace gl
