#include "schedulers/rc_informed.h"

#include <algorithm>
#include <vector>

namespace gl {

Placement RcInformedScheduler::Place(const SchedulerInput& input) {
  GOLDILOCKS_CHECK(input.workload != nullptr && input.topology != nullptr);
  const auto& topo = *input.topology;
  Placement p;
  p.server_of.assign(input.workload->containers.size(), ServerId::invalid());

  // Bucket = a server with its CPU capacity inflated by the oversubscription
  // factor. Accounting is on reservations (profile demand), not live demand.
  std::vector<Resource> reserved(static_cast<std::size_t>(topo.num_servers()));
  auto bucket_capacity = [&](ServerId s) {
    Resource cap = topo.server_capacity(s);
    cap.cpu *= cpu_oversubscription_;
    return cap;
  };

  // Resource Central buckets VMs by predicted size class: same-class VMs
  // are packed together. Ordering by app type (the size class proxy) before
  // the first-fit sweep reproduces that — and, as in the real system,
  // containers of one service end up scattered because their components
  // fall into different buckets.
  std::vector<int> order;
  for (const auto& c : input.workload->containers) {
    if (input.IsActive(c.id)) order.push_back(c.id.value());
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return input.workload->containers[static_cast<std::size_t>(a)].app <
           input.workload->containers[static_cast<std::size_t>(b)].app;
  });

  // First fit, scanning from the last bucket that accepted something
  // (same-class reservations are identical sizes, so this stays near-O(1)
  // per container).
  int scan_start = 0;
  for (const int ci : order) {
    const auto& c =
        input.workload->containers[static_cast<std::size_t>(ci)];
    // Resource Central packs against what the owner reserved (CPU cores
    // and memory), not against live utilization; network is not reserved.
    const Resource reservation = GetAppProfile(c.app).reserved;
    ServerId chosen = ServerId::invalid();
    for (int k = 0; k < topo.num_servers(); ++k) {
      const int s = (scan_start + k) % topo.num_servers();
      const ServerId sid{s};
      const Resource after = reserved[static_cast<std::size_t>(s)] + reservation;
      if (after.FitsIn(bucket_capacity(sid))) {
        chosen = sid;
        break;
      }
    }
    if (!chosen.valid()) continue;
    reserved[static_cast<std::size_t>(chosen.value())] += reservation;
    p.server_of[static_cast<std::size_t>(c.id.value())] = chosen;
    scan_start = chosen.value();
  }
  return p;
}

}  // namespace gl
