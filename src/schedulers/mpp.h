// mPP from pMapper [16]: power-aware First Fit Decreasing. Containers are
// considered in decreasing order of demand size; each goes to the feasible
// server with the lowest power increase per unit of utilization, packing
// servers up to `max_utilization` (95% in the paper's experiments — the
// contrast with Goldilocks' 70% PEE ceiling is the point of the comparison).
#pragma once

#include "power/server_power.h"
#include "schedulers/scheduler.h"

namespace gl {

class MppScheduler final : public Scheduler {
 public:
  explicit MppScheduler(ServerPowerModel power_model =
                            ServerPowerModel::Dell2018(),
                        double max_utilization GL_UNITS(dimensionless) = 0.95)
      : power_(std::move(power_model)), max_utilization_(max_utilization) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  Placement Place(const SchedulerInput& input) override;

 private:
  std::string name_ = "mPP";
  ServerPowerModel power_;
  double max_utilization_ GL_UNITS(dimensionless);
};

}  // namespace gl
