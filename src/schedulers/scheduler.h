// Common interface for container placement policies.
//
// Every epoch the simulator asks a Scheduler to map the active containers to
// servers. The input carries the workload structure (only Goldilocks uses
// the communication edges), the current-epoch demand vectors, and the
// previous placement (for stability-aware policies and migration
// accounting).
#pragma once

#include <span>
#include <string>

#include "schedulers/placement.h"
#include "workload/container.h"

namespace gl {

struct SchedulerInput {
  const Workload* workload = nullptr;
  std::span<const Resource> demands;        // per ContainerId
  std::span<const std::uint8_t> active;     // per ContainerId
  const Topology* topology = nullptr;
  const Placement* previous = nullptr;      // nullable

  [[nodiscard]] bool IsActive(ContainerId c) const {
    const auto i = static_cast<std::size_t>(c.value());
    return i < active.size() && active[i] != 0;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  // Maps every active container to a server. Implementations must respect
  // server capacity at their policy's packing ceiling; containers that fit
  // nowhere are left unplaced (callers treat that as an admission failure).
  virtual Placement Place(const SchedulerInput& input) = 0;

  // Digest of any mutable policy state that influences future placements —
  // RNG cursors, cached groupings. The reproducibility gate records it per
  // epoch; two same-seed runs must produce identical digest streams.
  // Stateless policies keep the default.
  [[nodiscard]] virtual std::uint64_t StateDigest() const { return 0; }
};

}  // namespace gl
