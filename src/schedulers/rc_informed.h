// RC-Informed, after Resource Central [15]: bucket-based placement on
// *reserved* resources with CPU oversubscription. Each container's
// reservation is its application profile's nominal demand (what the owner
// requested), not the live utilization; CPU is oversubscribed 125% because
// reservations are rarely fully used. The number of active servers is
// therefore driven by reservations — the behaviour Fig. 13 highlights
// (RC-Informed holds ~2358 servers regardless of instantaneous load).
#pragma once

#include "schedulers/scheduler.h"

namespace gl {

class RcInformedScheduler final : public Scheduler {
 public:
  explicit RcInformedScheduler(double cpu_oversubscription = 1.25)
      : cpu_oversubscription_(cpu_oversubscription) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  Placement Place(const SchedulerInput& input) override;

 private:
  std::string name_ = "RC-Informed";
  double cpu_oversubscription_;
};

}  // namespace gl
