#include "schedulers/borg.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gl {
namespace {

// Stranding score after hypothetically placing `demand` on the server:
// spread between the most- and least-free dimension, minus a packing bonus
// for high utilization. Lower is better.
double StrandingScore(const Resource& load, const Resource& demand,
                      const Resource& cap) GL_UNITS(dimensionless) {
  const Resource after = load + demand;
  auto free_frac = [](double used, double capacity) {
    return capacity > 0.0 ? std::max(0.0, 1.0 - used / capacity) : 0.0;
  };
  const double fc GL_UNITS(dimensionless) = free_frac(after.cpu, cap.cpu);
  const double fm GL_UNITS(dimensionless) = free_frac(after.mem_gb, cap.mem_gb);
  const double fn GL_UNITS(dimensionless) =
      free_frac(after.net_mbps, cap.net_mbps);
  const double spread GL_UNITS(dimensionless) =
      std::max({fc, fm, fn}) - std::min({fc, fm, fn});
  const double utilization GL_UNITS(dimensionless) =
      1.0 - (fc + fm + fn) / 3.0;
  return spread - 0.5 * utilization;
}

}  // namespace

Placement BorgScheduler::Place(const SchedulerInput& input) {
  GOLDILOCKS_CHECK(input.workload != nullptr && input.topology != nullptr);
  const auto& topo = *input.topology;
  PackingState state(topo);
  Placement p;
  p.server_of.assign(input.workload->containers.size(), ServerId::invalid());

  const Resource ref = topo.average_server_capacity();
  std::vector<int> order;
  for (const auto& c : input.workload->containers) {
    if (input.IsActive(c.id)) order.push_back(c.id.value());
  }
  // Larger tasks first: fragments pack into the gaps the big ones leave.
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return input.demands[static_cast<std::size_t>(a)].NormalizedL1(ref) >
           input.demands[static_cast<std::size_t>(b)].NormalizedL1(ref);
  });

  std::vector<int> open;
  int next_fresh = 0;
  for (const int ci : order) {
    const auto& demand = input.demands[static_cast<std::size_t>(ci)];
    ServerId best = ServerId::invalid();
    double best_score GL_UNITS(dimensionless) = 0.0;
    for (const int s : open) {
      const ServerId sid{s};
      if (!state.Fits(sid, demand, max_utilization_)) continue;
      const double score GL_UNITS(dimensionless) =
          StrandingScore(state.load(sid), demand, topo.server_capacity(sid));
      if (!best.valid() || score < best_score) {
        best = sid;
        best_score = score;
      }
    }
    // Opening a new machine is a last resort: Borg packs first.
    if (!best.valid() && next_fresh < topo.num_servers()) {
      const ServerId fresh{next_fresh};
      if (state.Fits(fresh, demand, max_utilization_)) best = fresh;
    }
    if (!best.valid()) {
      // Nothing fits under the 95% packing target: spill at full capacity
      // rather than rejecting (the target is a goal, not an admission rule).
      for (const int s : open) {
        const ServerId sid{s};
        if (state.Fits(sid, demand, 1.0)) {
          best = sid;
          break;
        }
      }
    }
    if (!best.valid()) continue;
    if (best.value() == next_fresh) {
      open.push_back(next_fresh);
      ++next_fresh;
    }
    state.Add(best, demand);
    p.server_of[static_cast<std::size_t>(ci)] = best;
  }
  return p;
}

}  // namespace gl
