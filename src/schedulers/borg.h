// Borg's task-packing policy [14]: best-fit scoring that reduces *stranded
// resources* — capacity left unusable on a machine because one dimension is
// exhausted while others are free. The score prefers servers where, after
// placement, the free fractions of CPU / memory / network stay even, and
// among those the fullest server (pack tight, keep machines either busy or
// empty).
#pragma once

#include "schedulers/scheduler.h"

namespace gl {

class BorgScheduler final : public Scheduler {
 public:
  explicit BorgScheduler(double max_utilization GL_UNITS(dimensionless) = 0.95)
      : max_utilization_(max_utilization) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  Placement Place(const SchedulerInput& input) override;

 private:
  std::string name_ = "Borg";
  double max_utilization_ GL_UNITS(dimensionless);
};

}  // namespace gl
