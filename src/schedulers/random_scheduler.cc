#include "schedulers/random_scheduler.h"

namespace gl {

Placement RandomScheduler::Place(const SchedulerInput& input) {
  GOLDILOCKS_CHECK(input.workload != nullptr && input.topology != nullptr);
  const auto& topo = *input.topology;
  PackingState state(topo);
  Placement p;
  p.server_of.assign(input.workload->containers.size(), ServerId::invalid());

  const int n = topo.num_servers();
  for (const auto& c : input.workload->containers) {
    if (!input.IsActive(c.id)) continue;
    const auto& demand = input.demands[static_cast<std::size_t>(c.id.value())];
    ServerId chosen = ServerId::invalid();
    // A handful of random probes, then a linear sweep from a random start so
    // a feasible server is always found if one exists.
    for (int probe = 0; probe < 8 && !chosen.valid(); ++probe) {
      const ServerId sid{static_cast<int>(rng_.NextBelow(
          static_cast<std::uint64_t>(n)))};
      if (state.Fits(sid, demand, max_utilization_)) chosen = sid;
    }
    if (!chosen.valid()) {
      const int start = static_cast<int>(rng_.NextBelow(
          static_cast<std::uint64_t>(n)));
      for (int k = 0; k < n; ++k) {
        const ServerId sid{(start + k) % n};
        if (state.Fits(sid, demand, max_utilization_)) {
          chosen = sid;
          break;
        }
      }
    }
    if (chosen.valid()) {
      state.Add(chosen, demand);
      p.server_of[static_cast<std::size_t>(c.id.value())] = chosen;
    }
  }
  return p;
}

}  // namespace gl
