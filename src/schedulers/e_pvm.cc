#include "schedulers/e_pvm.h"

#include <cmath>
#include <queue>
#include <vector>

namespace gl {

Placement EPvmScheduler::Place(const SchedulerInput& input) {
  GOLDILOCKS_CHECK(input.workload != nullptr && input.topology != nullptr);
  return mode_ == EPvmMode::kLeastUtilized ? PlaceLeastUtilized(input)
                                           : PlaceOpportunityCost(input);
}

Placement EPvmScheduler::PlaceLeastUtilized(
    const SchedulerInput& input) const {
  const auto& topo = *input.topology;
  PackingState state(topo);
  Placement p;
  p.server_of.assign(input.workload->containers.size(), ServerId::invalid());

  // Least-utilized-first selection via a lazy min-heap: stale entries (whose
  // utilization no longer matches) are re-pushed with the fresh value.
  struct Entry {
    double util GL_UNITS(dimensionless);
    int server;
    bool operator>(const Entry& o) const { return util > o.util; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  std::vector<double> current GL_UNITS(dimensionless)(
      static_cast<std::size_t>(topo.num_servers()));
  for (int s = 0; s < topo.num_servers(); ++s) {
    current[static_cast<std::size_t>(s)] = 0.0;
    heap.push({0.0, s});
  }

  for (const auto& c : input.workload->containers) {
    if (!input.IsActive(c.id)) continue;
    const auto& demand = input.demands[static_cast<std::size_t>(c.id.value())];
    // Pop candidates in utilization order; servers the container does not
    // fit on are parked aside and restored afterwards.
    std::vector<Entry> parked;
    ServerId chosen = ServerId::invalid();
    while (!heap.empty()) {
      const Entry e = heap.top();
      heap.pop();
      if (e.util != current[static_cast<std::size_t>(e.server)]) {
        continue;  // stale
      }
      const ServerId sid{e.server};
      if (state.Fits(sid, demand, max_utilization_)) {
        chosen = sid;
        break;
      }
      parked.push_back(e);
    }
    for (const auto& e : parked) heap.push(e);
    if (chosen.valid()) {
      state.Add(chosen, demand);
      const double u GL_UNITS(dimensionless) = state.Utilization(chosen);
      current[static_cast<std::size_t>(chosen.value())] = u;
      heap.push({u, chosen.value()});
      p.server_of[static_cast<std::size_t>(c.id.value())] = chosen;
    }
  }
  return p;
}

Placement EPvmScheduler::PlaceOpportunityCost(
    const SchedulerInput& input) const {
  const auto& topo = *input.topology;
  PackingState state(topo);
  Placement p;
  p.server_of.assign(input.workload->containers.size(), ServerId::invalid());

  // Marginal cost of adding `demand` to server s: Σ over dimensions of
  // a^{u'} − a^{u}. Convexity penalises loading an already-busy dimension.
  auto marginal_cost = [&](ServerId s, const Resource& demand) {
    const Resource& cap = topo.server_capacity(s);
    const Resource& load = state.load(s);
    auto dim = [&](double used, double add, double capacity) {
      if (capacity <= 0.0) return 0.0;
      const double u0 = used / capacity;
      const double u1 = (used + add) / capacity;
      return std::pow(cost_base_, u1) - std::pow(cost_base_, u0);
    };
    return dim(load.cpu, demand.cpu, cap.cpu) +
           dim(load.mem_gb, demand.mem_gb, cap.mem_gb) +
           dim(load.net_mbps, demand.net_mbps, cap.net_mbps);
  };

  for (const auto& c : input.workload->containers) {
    if (!input.IsActive(c.id)) continue;
    const auto& demand = input.demands[static_cast<std::size_t>(c.id.value())];
    ServerId best = ServerId::invalid();
    double best_cost GL_UNITS(dimensionless) = 0.0;
    for (int s = 0; s < topo.num_servers(); ++s) {
      const ServerId sid{s};
      if (!state.Fits(sid, demand, max_utilization_)) continue;
      const double cost GL_UNITS(dimensionless) = marginal_cost(sid, demand);
      if (!best.valid() || cost < best_cost) {
        best = sid;
        best_cost = cost;
      }
    }
    if (best.valid()) {
      state.Add(best, demand);
      p.server_of[static_cast<std::size_t>(c.id.value())] = best;
    }
  }
  return p;
}

}  // namespace gl
