#include "workload/msr_trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "workload/calibration.h"

namespace gl {

MsrTrace GenerateMsrSearchTrace(const MsrTraceOptions& opts, Rng& rng) {
  GOLDILOCKS_CHECK_GT(opts.num_vertices, 10);
  MsrTrace trace;
  const int n = opts.num_vertices;
  const int num_background =
      static_cast<int>(std::lround(n * opts.background_fraction));
  const int num_aggregators =
      static_cast<int>(std::lround(n * opts.aggregator_fraction));
  const int num_search = n - num_background;

  trace.is_background.assign(static_cast<std::size_t>(n), 0);
  // Vertices [0, num_aggregators) are aggregators, [num_aggregators,
  // num_search) ISNs, the rest Hadoop background.
  for (int v = num_search; v < n; ++v) {
    trace.is_background[static_cast<std::size_t>(v)] = 1;
  }

  // --- degree sequence ------------------------------------------------------
  // Aggregators carry the fan-out; ISN degrees are moderate. The mix is
  // tuned so the mean lands on opts.mean_degree (Microsoft reports 45
  // distinct connections per VM on average [19]).
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  auto sample_degree = [&](double mean, double sigma) {
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::max(1, static_cast<int>(std::lround(
                           rng.LogNormal(mu, sigma))));
  };
  for (int v = 0; v < n; ++v) {
    if (trace.is_background[static_cast<std::size_t>(v)]) {
      degree[static_cast<std::size_t>(v)] = sample_degree(4.0, 0.5);
    } else if (v < num_aggregators) {
      degree[static_cast<std::size_t>(v)] = sample_degree(300.0, 0.6);
    } else {
      degree[static_cast<std::size_t>(v)] = sample_degree(24.0, 0.8);
    }
  }
  // Rescale to hit the target mean degree.
  const double current_mean =
      std::accumulate(degree.begin(), degree.end(), 0.0) / n;
  const double scale = opts.mean_degree / current_mean;
  for (auto& d : degree) {
    d = std::max(1, static_cast<int>(std::lround(d * scale)));
  }

  // --- configuration-model wiring -------------------------------------------
  std::vector<int> stubs;
  for (int v = 0; v < n; ++v) {
    for (int i = 0; i < degree[static_cast<std::size_t>(v)]; ++i) {
      stubs.push_back(v);
    }
  }
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.NextBelow(i)]);
  }

  // --- containers ------------------------------------------------------------
  trace.workload.containers.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    Container c;
    c.id = ContainerId{v};
    c.service = v;
    if (trace.is_background[static_cast<std::size_t>(v)]) {
      c.app = AppType::kHadoop;
      const double traffic = rng.Uniform(50.0, 400.0);
      c.demand = Resource{.cpu = HadoopCpuForTrafficMbps(traffic, rng),
                          .mem_gb = 2.0,
                          .net_mbps = traffic};
    } else {
      c.app = AppType::kSolr;
      // ISNs serve proportionally to their fan-in, near the 120-connection
      // cap for well-connected nodes (Fig 12a sweeps to exactly that).
      const double rps = std::clamp(
          2.5 * static_cast<double>(degree[static_cast<std::size_t>(v)]),
          60.0, opts.max_connections_per_isn);
      c.demand = Resource{
          .cpu = SolrCpuForRps(rps),
          .mem_gb = kSolrIndexMemoryGb,  // constant in-memory index (Fig 5b)
          .net_mbps = 0.016 * rps * 8.0};  // ~2KB per query at `rps`
    }
    trace.workload.containers.push_back(c);
  }

  // --- edges ------------------------------------------------------------------
  // Pair stubs; Graph-level dedup happens later (AddEdge merges), here we
  // merge duplicates ourselves so the edge count is honest.
  std::vector<std::pair<int, int>> pairs;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    int a = stubs[i], b = stubs[i + 1];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    pairs.emplace_back(a, b);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  trace.workload.edges.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    const bool bg = trace.is_background[static_cast<std::size_t>(a)] ||
                    trace.is_background[static_cast<std::size_t>(b)];
    double flows;
    if (bg) {
      flows = static_cast<double>(rng.UniformInt(1, 3));
      trace.background_flow_mb.push_back(rng.Uniform(
          opts.min_background_flow_mb, opts.max_background_flow_mb));
    } else {
      // Distinct query flows between a search pair: heavy-tailed, capped by
      // the per-ISN connection limit.
      flows = std::min(opts.max_connections_per_isn,
                       std::floor(rng.Pareto(1.0, 1.2)));
      trace.query_flow_kb.push_back(
          rng.Uniform(opts.min_query_flow_kb, opts.max_query_flow_kb));
    }
    trace.workload.edges.push_back(
        {ContainerId{a}, ContainerId{b}, flows, /*is_query=*/!bg});
  }
  return trace;
}

Workload ExpandTraceToContainers(const MsrTrace& trace, int per_vertex) {
  GOLDILOCKS_CHECK_GE(per_vertex, 1);
  Workload out;
  const int n = trace.workload.size();
  out.containers.reserve(static_cast<std::size_t>(n * per_vertex));
  // Hub container of vertex v is id v*per_vertex.
  for (int v = 0; v < n; ++v) {
    const Container& proto = trace.workload.containers[
        static_cast<std::size_t>(v)];
    for (int r = 0; r < per_vertex; ++r) {
      Container c = proto;
      c.id = ContainerId{v * per_vertex + r};
      c.service = v;
      out.containers.push_back(c);
    }
    // Star inside the service: replicas exchange state with the hub as
    // often as the vertex talks to the outside on average.
    const double intra_flows = 8.0;
    for (int r = 1; r < per_vertex; ++r) {
      out.edges.push_back({ContainerId{v * per_vertex},
                           ContainerId{v * per_vertex + r}, intra_flows});
    }
  }
  for (const auto& e : trace.workload.edges) {
    out.edges.push_back({ContainerId{e.a.value() * per_vertex},
                         ContainerId{e.b.value() * per_vertex}, e.flows,
                         e.is_query});
  }
  return out;
}

}  // namespace gl
