#include "workload/calibration.h"

#include <algorithm>
#include <cmath>

#include "workload/container.h"

namespace gl {

double SolrCpuForRps(double rps) {
  const double r = std::max(0.0, rps);
  // Linear term dominates; the quadratic tail reflects garbage-collection
  // and cache pressure near saturation (Fig 12a rises faster past ~90 RPS).
  return 6.0 + 1.9 * r + 0.006 * r * r;
}

double HadoopCpuTrend(double traffic_mbps) {
  const double t = std::max(0.0, traffic_mbps);
  return 40.0 + 0.85 * t;
}

double HadoopCpuForTrafficMbps(double traffic_mbps, Rng& rng) {
  // The Fig 12(b) scatter spreads roughly ±35% around the trend: map-heavy
  // tasks burn CPU with little traffic, shuffle-heavy ones the reverse.
  const double trend = HadoopCpuTrend(traffic_mbps);
  const double spread = rng.Gaussian(1.0, 0.18);
  return std::max(5.0, trend * std::clamp(spread, 0.5, 1.5));
}

Resource MemcachedDemandForRps(double rps) {
  const AppProfile& p = GetAppProfile(AppType::kMemcached);
  const double scale = std::max(0.05, rps / p.reference_rps);
  return Resource{.cpu = p.demand.cpu * scale,
                  .mem_gb = p.demand.mem_gb,  // cache stays resident
                  .net_mbps = p.demand.net_mbps * scale};
}

Resource FrontendDemandForRps(double rps) {
  const AppProfile& p = GetAppProfile(AppType::kFrontend);
  const double scale = std::max(0.05, rps / p.reference_rps);
  return Resource{.cpu = p.demand.cpu * scale,
                  .mem_gb = p.demand.mem_gb,
                  .net_mbps = p.demand.net_mbps * scale};
}

}  // namespace gl
