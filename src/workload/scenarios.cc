#include "workload/scenarios.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "workload/calibration.h"
#include "workload/msr_trace.h"

namespace gl {

std::vector<ContainerId> AppendService(Workload& w, AppType type, int count,
                                       int service_id) {
  GOLDILOCKS_CHECK_GE(count, 1);
  const AppProfile& profile = GetAppProfile(type);
  std::vector<ContainerId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Container c;
    c.id = ContainerId{w.size()};
    c.app = type;
    c.demand = profile.demand;
    c.service = service_id;
    w.containers.push_back(c);
    ids.push_back(c.id);
  }
  // Star around the first container (master/coordinator) plus a
  // nearest-neighbour chain so partitions cannot cheaply split the service.
  for (std::size_t i = 1; i < ids.size(); ++i) {
    w.edges.push_back({ids[0], ids[i], profile.flow_count});
    if (i + 1 < ids.size()) {
      w.edges.push_back({ids[i], ids[i + 1], profile.flow_count * 0.25});
    }
  }
  return ids;
}

namespace {

// ---------------------------------------------------------------------------
// Twitter content caching (Fig. 9).
// ---------------------------------------------------------------------------
class TwitterCachingScenario final : public Scenario {
 public:
  explicit TwitterCachingScenario(const TwitterScenarioOptions& opts)
      : opts_(opts),
        name_("twitter-caching/wikipedia"),
        trace_(opts.min_rps, opts.max_rps,
               opts.epoch_minutes * opts.num_epochs, opts.seed),
        bursts_(opts.num_containers, opts.num_epochs, opts.seed ^ 0xb0b0) {
    GOLDILOCKS_CHECK(opts.num_containers >= 8 &&
                     opts.num_containers % 8 == 0);
    BuildWorkload();
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Workload& workload() const override { return workload_; }
  [[nodiscard]] int num_epochs() const override { return opts_.num_epochs; }
  [[nodiscard]] double epoch_minutes() const override {
    return opts_.epoch_minutes;
  }

  [[nodiscard]] std::vector<Resource> DemandsAt(int epoch) const override {
    const double per_pair_rps = PerPairRps(epoch);
    std::vector<Resource> demands;
    demands.reserve(workload_.containers.size());
    for (const auto& c : workload_.containers) {
      const double jitter =
          bursts_.Multiplier(c.id.value(), epoch % bursts_.num_steps());
      const double rps = per_pair_rps * jitter;
      demands.push_back(c.app == AppType::kMemcached
                            ? MemcachedDemandForRps(rps)
                            : FrontendDemandForRps(rps));
    }
    return demands;
  }

  [[nodiscard]] std::vector<std::uint8_t> ActiveAt(int epoch) const override {
    (void)epoch;
    return std::vector<std::uint8_t>(workload_.containers.size(), 1);
  }

  [[nodiscard]] double TotalRpsAt(int epoch) const override {
    return trace_.RpsAt((epoch + 0.5) * opts_.epoch_minutes);
  }

 private:
  [[nodiscard]] double PerPairRps(int epoch) const {
    const int pairs = opts_.num_containers / 2;
    return TotalRpsAt(epoch) / static_cast<double>(pairs);
  }

  void BuildWorkload() {
    // Services of 8 containers: 4 front-ends and their 4 Memcached peers.
    // The matched pair carries the Table II flow count; each front-end also
    // fans out lightly to the other Memcacheds of its service (consistent
    // hashing spreads keys across the peer set).
    const AppProfile& mc = GetAppProfile(AppType::kMemcached);
    const int services = opts_.num_containers / 8;
    for (int s = 0; s < services; ++s) {
      std::vector<ContainerId> fes, mcs;
      for (int i = 0; i < 4; ++i) {
        Container fe;
        fe.id = ContainerId{workload_.size()};
        fe.app = AppType::kFrontend;
        fe.demand = GetAppProfile(AppType::kFrontend).demand;
        fe.service = s;
        workload_.containers.push_back(fe);
        fes.push_back(fe.id);

        Container m;
        m.id = ContainerId{workload_.size()};
        m.app = AppType::kMemcached;
        m.demand = mc.demand;
        m.service = s;
        workload_.containers.push_back(m);
        mcs.push_back(m.id);
      }
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
          const double flows = (i == j) ? mc.flow_count : mc.flow_count * 0.1;
          workload_.edges.push_back({fes[static_cast<std::size_t>(i)],
                                     mcs[static_cast<std::size_t>(j)], flows,
                                     /*is_query=*/true});
        }
      }
    }
  }

  TwitterScenarioOptions opts_;
  std::string name_;
  WikipediaTrace trace_;
  CorrelatedDemandModel bursts_;
  Workload workload_;
};

// ---------------------------------------------------------------------------
// Azure application mixture (Fig. 10).
// ---------------------------------------------------------------------------
class AzureMixScenario final : public Scenario {
 public:
  explicit AzureMixScenario(const AzureScenarioOptions& opts)
      : opts_(opts),
        name_("azure-mix"),
        trace_(opts.min_containers, opts.max_containers,
               opts.epoch_minutes * opts.num_epochs, opts.seed),
        bursts_(opts.max_containers, opts.num_epochs, opts.seed ^ 0xdada) {
    BuildWorkload();
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Workload& workload() const override { return workload_; }
  [[nodiscard]] int num_epochs() const override { return opts_.num_epochs; }
  [[nodiscard]] double epoch_minutes() const override {
    return opts_.epoch_minutes;
  }

  [[nodiscard]] std::vector<Resource> DemandsAt(int epoch) const override {
    const auto active = ActiveAt(epoch);
    std::vector<Resource> demands(workload_.containers.size());
    for (std::size_t i = 0; i < workload_.containers.size(); ++i) {
      if (!active[i]) continue;  // stays zero
      const auto& c = workload_.containers[i];
      const double m = bursts_.Multiplier(static_cast<int>(i),
                                          epoch % bursts_.num_steps());
      if (c.app == AppType::kMemcached) {
        demands[i] = MemcachedDemandForRps(
            opts_.memcached_rps_per_connection * m);
      } else if (c.app == AppType::kFrontend) {
        demands[i] = FrontendDemandForRps(
            opts_.memcached_rps_per_connection * m);
      } else {
        // Background apps run at a fraction of their measured peak profile
        // (activity), with correlated bursts on top; resident memory stays.
        Resource d = GetAppProfile(c.app).demand;
        d.cpu *= opts_.background_activity * m;
        d.net_mbps *= opts_.background_activity * m;
        demands[i] = d;
      }
    }
    return demands;
  }

  [[nodiscard]] std::vector<std::uint8_t> ActiveAt(int epoch) const override {
    const int count = trace_.CountAt((epoch + 0.5) * opts_.epoch_minutes);
    std::vector<std::uint8_t> active(workload_.containers.size(), 0);
    // Containers are appended service-by-service; a prefix cut therefore
    // stops whole services first, mirroring jobs leaving the cluster.
    for (int i = 0; i < count && i < workload_.size(); ++i) {
      active[static_cast<std::size_t>(i)] = 1;
    }
    return active;
  }

  [[nodiscard]] double TotalRpsAt(int epoch) const override {
    // Only the Twitter caching connections serve front-end requests.
    const auto active = ActiveAt(epoch);
    double rps = 0.0;
    for (std::size_t i = 0; i < workload_.containers.size(); ++i) {
      if (active[i] && workload_.containers[i].app == AppType::kFrontend) {
        rps += opts_.memcached_rps_per_connection;
      }
    }
    return rps;
  }

 private:
  void BuildWorkload() {
    // Mixture sized to reach max_containers: Twitter caching pairs plus the
    // six background applications of Sec. VI-A-2, in repeating blocks so an
    // active-prefix always contains a representative mix.
    int service = 0;
    Rng rng(opts_.seed ^ 0x5e11);
    while (workload_.size() < opts_.max_containers) {
      const int block = service % 7;
      switch (block) {
        case 0: {  // Twitter caching: 4 FE/MC pairs
          auto ids = AppendService(workload_, AppType::kMemcached, 4, service);
          for (const auto mc_id : ids) {
            Container fe;
            fe.id = ContainerId{workload_.size()};
            fe.app = AppType::kFrontend;
            fe.demand = GetAppProfile(AppType::kFrontend).demand;
            fe.service = service;
            workload_.containers.push_back(fe);
            workload_.edges.push_back(
                {fe.id, mc_id, GetAppProfile(AppType::kMemcached).flow_count,
                 /*is_query=*/true});
          }
          break;
        }
        case 1:
          AppendService(workload_, AppType::kSolr, 1, service);
          break;
        case 2:
          AppendService(workload_, AppType::kSparkRecommend, 6, service);
          break;
        case 3:
          AppendService(workload_, AppType::kHadoop, 4, service);
          break;
        case 4:
          AppendService(workload_, AppType::kSparkPageRank, 4, service);
          break;
        case 5:
          AppendService(workload_, AppType::kCassandra, 4, service);
          break;
        case 6:
          // Media streaming shows up once in the mix — its 57 GB working
          // set (Table II) would exhaust the testbed's memory otherwise.
          if (service == 6) {
            AppendService(workload_, AppType::kNginx, 1, service);
          } else {
            AppendService(workload_, AppType::kHadoop, 4, service);
          }
          break;
      }
      ++service;
    }
    // Trim overshoot from the last service block.
    while (workload_.size() > opts_.max_containers) {
      const auto last = ContainerId{workload_.size() - 1};
      workload_.containers.pop_back();
      std::erase_if(workload_.edges, [last](const CommunicationEdge& e) {
        return e.a == last || e.b == last;
      });
    }
    (void)rng;
  }

  AzureScenarioOptions opts_;
  std::string name_;
  AzureContainerTrace trace_;
  CorrelatedDemandModel bursts_;
  Workload workload_;
};

// ---------------------------------------------------------------------------
// Microsoft-trace large-scale scenario (Fig. 13).
// ---------------------------------------------------------------------------
class MsrLargeScaleScenario final : public Scenario {
 public:
  explicit MsrLargeScaleScenario(const MsrScenarioOptions& opts)
      : opts_(opts), name_("msr-large-scale") {
    Rng rng(opts.seed);
    MsrTraceOptions topts;
    topts.num_vertices = opts.trace_vertices;
    topts.seed = opts.seed;
    trace_ = GenerateMsrSearchTrace(topts, rng);
    workload_ = ExpandTraceToContainers(trace_, opts.per_vertex);
    // Per-service burst streams (containers of one service burst together,
    // mirroring the VM-level correlation of Sec. II).
    bursts_ = std::make_unique<CorrelatedDemandModel>(
        opts.trace_vertices, std::max(2, opts.num_epochs),
        opts.seed ^ 0xfeed);
    // Count of latency-sensitive search containers, for the RPS metric.
    for (const auto& c : workload_.containers) {
      search_containers_ += c.app == AppType::kSolr;
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Workload& workload() const override { return workload_; }
  [[nodiscard]] int num_epochs() const override { return opts_.num_epochs; }
  [[nodiscard]] double epoch_minutes() const override {
    return opts_.epoch_minutes;
  }

  [[nodiscard]] double DiurnalAt(int epoch) const {
    // Hour-of-day shape: 0.55 at night, 1.0 at the evening peak.
    const double hour = std::fmod(epoch * opts_.epoch_minutes / 60.0, 24.0);
    return 0.775 + 0.225 * std::sin(2.0 * 3.14159265358979 *
                                    (hour - 9.0) / 24.0);
  }

  [[nodiscard]] std::vector<Resource> DemandsAt(int epoch) const override {
    const double diurnal = DiurnalAt(epoch);
    std::vector<Resource> demands;
    demands.reserve(workload_.containers.size());
    for (const auto& c : workload_.containers) {
      const double m =
          diurnal * bursts_->Multiplier(c.service,
                                        epoch % bursts_->num_steps());
      Resource d = c.demand;
      d.cpu *= m;
      d.net_mbps *= m;  // memory (the index) stays resident
      demands.push_back(d);
    }
    return demands;
  }

  [[nodiscard]] std::vector<std::uint8_t> ActiveAt(int epoch) const override {
    (void)epoch;
    return std::vector<std::uint8_t>(workload_.containers.size(), 1);
  }

  [[nodiscard]] double TotalRpsAt(int epoch) const override {
    // Each search container serves up to 120 RPS at peak (Fig 12a).
    return search_containers_ * 120.0 * DiurnalAt(epoch);
  }

 private:
  MsrScenarioOptions opts_;
  std::string name_;
  MsrTrace trace_;
  Workload workload_;
  std::unique_ptr<CorrelatedDemandModel> bursts_;
  int search_containers_ = 0;
};

}  // namespace

std::unique_ptr<Scenario> MakeMsrLargeScaleScenario(
    const MsrScenarioOptions& opts) {
  return std::make_unique<MsrLargeScaleScenario>(opts);
}

std::unique_ptr<Scenario> MakeTwitterCachingScenario(
    const TwitterScenarioOptions& opts) {
  return std::make_unique<TwitterCachingScenario>(opts);
}

std::unique_ptr<Scenario> MakeAzureMixScenario(
    const AzureScenarioOptions& opts) {
  return std::make_unique<AzureMixScenario>(opts);
}

}  // namespace gl
