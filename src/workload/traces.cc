#include "workload/traces.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace gl {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Smooth periodic interpolation over a noise table.
double SmoothLookup(const std::vector<double>& table, double phase01) {
  const auto n = static_cast<double>(table.size());
  double x = phase01 - std::floor(phase01);
  const double pos = x * n;
  const auto i0 = static_cast<std::size_t>(pos) % table.size();
  const auto i1 = (i0 + 1) % table.size();
  const double f = pos - std::floor(pos);
  // Cosine interpolation keeps the series C1-smooth.
  const double w = (1.0 - std::cos(f * kPi)) * 0.5;
  return table[i0] * (1.0 - w) + table[i1] * w;
}

}  // namespace

WikipediaTrace::WikipediaTrace(double min_rps, double max_rps,
                               double period_minutes, std::uint64_t seed)
    : min_rps_(min_rps), max_rps_(max_rps), period_(period_minutes) {
  GOLDILOCKS_CHECK(min_rps > 0.0 && max_rps >= min_rps && period_minutes > 0);
  Rng rng(seed);
  noise_.resize(48);
  for (auto& v : noise_) v = rng.Gaussian(0.0, 0.04);
}

double WikipediaTrace::RpsAt(double minutes) const {
  const double phase = minutes / period_;
  // Wikipedia's daily shape: a deep night trough and a broad daytime
  // plateau with an evening peak — approximated by two harmonics.
  const double d1 = std::sin(2.0 * kPi * (phase - 0.30));
  const double d2 = 0.35 * std::sin(4.0 * kPi * (phase - 0.05));
  double shape = 0.5 + 0.5 * std::clamp((d1 + d2) / 1.25, -1.0, 1.0);
  shape = std::clamp(shape * (1.0 + SmoothLookup(noise_, phase * 6.0)), 0.0,
                     1.0);
  return min_rps_ + (max_rps_ - min_rps_) * shape;
}

AzureContainerTrace::AzureContainerTrace(int min_containers,
                                         int max_containers,
                                         double period_minutes,
                                         std::uint64_t seed)
    : min_(min_containers), max_(max_containers), period_(period_minutes) {
  GOLDILOCKS_CHECK(min_containers > 0 && max_containers >= min_containers);
  Rng rng(seed);
  // Bounded random walk, then normalised to [0, 1] so the trace actually
  // touches both extremes of the container range.
  walk_.resize(64);
  double x = 0.5;
  for (auto& v : walk_) {
    x += rng.Gaussian(0.0, 0.18);
    x = std::clamp(x, 0.0, 1.0);
    v = x;
  }
  const auto [lo_it, hi_it] = std::minmax_element(walk_.begin(), walk_.end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi > lo) {
    for (auto& v : walk_) v = (v - lo) / (hi - lo);
  }
}

int AzureContainerTrace::CountAt(double minutes) const {
  const double w = SmoothLookup(walk_, minutes / period_);
  return min_ + static_cast<int>(std::lround(w * (max_ - min_)));
}

CorrelatedDemandModel::CorrelatedDemandModel(int num_series, int num_steps,
                                             std::uint64_t seed)
    : num_series_(num_series), num_steps_(num_steps) {
  GOLDILOCKS_CHECK(num_series > 0 && num_steps > 1);
  Rng rng(seed);
  // Common burst process: AR(1) with strong persistence.
  std::vector<double> common(static_cast<std::size_t>(num_steps));
  double c = 0.0;
  for (auto& v : common) {
    c = 0.85 * c + rng.Gaussian(0.0, 0.3);
    v = c;
  }
  // Weights: corr(m_i, m_j) = Var(shared·C) / (Var(shared·C) + idio²).
  // C is AR(1) with φ=0.85, σ=0.3 → Var(C) ≈ 0.324; with shared=1.0 and
  // idio=0.37, corr ≈ 0.70 — the middle of the paper's 0.6–0.8 band.
  constexpr double kShared = 1.0;
  constexpr double kIdio = 0.37;
  values_.resize(static_cast<std::size_t>(num_series) *
                 static_cast<std::size_t>(num_steps));
  for (int s = 0; s < num_series; ++s) {
    Rng own = rng.Fork();
    for (int t = 0; t < num_steps; ++t) {
      const double m = 1.0 + 0.25 * (kShared * common[static_cast<std::size_t>(t)] +
                                     kIdio * own.Gaussian());
      values_[static_cast<std::size_t>(s) *
                  static_cast<std::size_t>(num_steps) +
              static_cast<std::size_t>(t)] = std::clamp(m, 0.3, 2.2);
    }
  }
}

double CorrelatedDemandModel::Multiplier(int series, int step) const {
  GOLDILOCKS_CHECK(series >= 0 && series < num_series_);
  GOLDILOCKS_CHECK(step >= 0 && step < num_steps_);
  return values_[static_cast<std::size_t>(series) *
                     static_cast<std::size_t>(num_steps_) +
                 static_cast<std::size_t>(step)];
}

double CorrelatedDemandModel::Correlation(int a, int b) const {
  std::vector<double> xa(static_cast<std::size_t>(num_steps_));
  std::vector<double> xb(static_cast<std::size_t>(num_steps_));
  for (int t = 0; t < num_steps_; ++t) {
    xa[static_cast<std::size_t>(t)] = Multiplier(a, t);
    xb[static_cast<std::size_t>(t)] = Multiplier(b, t);
  }
  return PearsonCorrelation(xa, xb);
}

}  // namespace gl
