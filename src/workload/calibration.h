// Resource-demand calibration models (Fig. 12 of the paper).
//
// The large-scale simulation has only flow-level information in the trace;
// the paper derives server resource demands from testbed micro-benchmarks:
//   * Fig 12(a): Apache Solr CPU utilization vs search request rate (up to
//     120 RPS — the trace's max connections per Index Serving Node) with a
//     constant 12 GB in-memory index;
//   * Fig 12(b): Hadoop CPU utilization vs generated network traffic on a
//     16-node cluster replaying the Facebook job trace — a scatter, so a
//     random Y is drawn for a given X.
// These closed forms are fitted to the shapes shown in the paper.
#pragma once

#include "common/resource.h"
#include "common/rng.h"

namespace gl {

// Fig 12(a): summed-over-cores CPU % for a Solr ISN serving `rps` requests
// per second. Roughly linear with a mild superlinear tail as the node
// saturates; 0 ≤ rps ≤ 120 in the trace.
double SolrCpuForRps(double rps);

// Constant in-memory index footprint for every search vertex (Sec. III-A).
inline constexpr double kSolrIndexMemoryGb = 12.0;

// Fig 12(b): CPU % for a Hadoop slave pushing `traffic_mbps` of shuffle /
// update traffic. The testbed scatter shows several CPU values per traffic
// rate; the model is a linear trend plus a sampled spread.
double HadoopCpuForTrafficMbps(double traffic_mbps, Rng& rng);
// The deterministic trend line (for tests and plots).
double HadoopCpuTrend(double traffic_mbps);

// Twitter caching: demand of one Memcached/frontend container at a given
// per-container request rate, scaled from the Table II reference point
// (CPU and network scale with RPS; memory is the cache and stays flat).
Resource MemcachedDemandForRps(double rps);
Resource FrontendDemandForRps(double rps);

}  // namespace gl
