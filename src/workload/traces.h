// Load-trace patterns driving the experiments.
//
//   * WikipediaTrace — the diurnal request-rate shape of the Wikipedia
//     workload analysis [27], compressed into the 60-minute testbed window
//     of Fig. 9 (aggregate RPS swings 44K–440K).
//   * AzureContainerTrace — the container-count fluctuation of the Microsoft
//     Azure trace [15] used in Fig. 10 (149–221 containers, slow wander).
//   * CorrelatedDemandModel — per-container demand multipliers with the
//     pairwise Pearson correlation (0.6–0.8) the paper measured across 1500
//     Azure VMs (Sec. II): bursts are correlated, so headroom matters.
#pragma once

#include <vector>

#include "common/rng.h"

namespace gl {

class WikipediaTrace {
 public:
  // Aggregate request rate swings between min_rps and max_rps over a
  // `period_minutes` diurnal cycle (the testbed replays one full day in 60
  // minutes).
  WikipediaTrace(double min_rps, double max_rps, double period_minutes = 60.0,
                 std::uint64_t seed = 0x5eed);

  // Aggregate requests/second at time t (minutes).
  [[nodiscard]] double RpsAt(double minutes) const;

  [[nodiscard]] double min_rps() const { return min_rps_; }
  [[nodiscard]] double max_rps() const { return max_rps_; }

 private:
  double min_rps_;
  double max_rps_;
  double period_;
  std::vector<double> noise_;  // smooth per-slot multiplicative noise
};

class AzureContainerTrace {
 public:
  AzureContainerTrace(int min_containers, int max_containers,
                      double period_minutes = 60.0,
                      std::uint64_t seed = 0xa22e);

  // Number of live containers at time t (minutes).
  [[nodiscard]] int CountAt(double minutes) const;

  [[nodiscard]] int min_containers() const { return min_; }
  [[nodiscard]] int max_containers() const { return max_; }

 private:
  int min_;
  int max_;
  double period_;
  std::vector<double> walk_;  // smoothed random walk in [0,1]
};

// Demand multiplier series: every container's multiplier is
//   m_i(t) = clamp(base + shared·C(t) + idio·N_i(t))
// where C is a common burst process and N_i independent noise. The weights
// are chosen so pairwise Pearson correlation lands in the paper's 0.6–0.8
// band (validated by tests).
class CorrelatedDemandModel {
 public:
  CorrelatedDemandModel(int num_series, int num_steps,
                        std::uint64_t seed = 0xc0de);

  [[nodiscard]] double Multiplier(int series, int step) const;
  [[nodiscard]] int num_series() const { return num_series_; }
  [[nodiscard]] int num_steps() const { return num_steps_; }

  // Pairwise Pearson correlation between two series' multiplier vectors.
  [[nodiscard]] double Correlation(int a, int b) const;

 private:
  int num_series_;
  int num_steps_;
  std::vector<double> values_;  // row-major [series][step]
};

}  // namespace gl
