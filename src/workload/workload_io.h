// Workload serialization: CSV import/export.
//
// Downstream users bring their own container inventories and communication
// matrices (e.g. from sFlow/IPTraf captures, as the paper's testbed did).
// The format is two flat CSV files:
//
//   containers.csv: id,app,cpu,mem_gb,net_mbps,service,replica_set
//   edges.csv:      a,b,flows,is_query
//
// `app` is the AppTypeName string (unknown names map to Cassandra-class
// generic); `replica_set` is empty or an integer. Loading validates ids and
// referential integrity and reports precise line numbers on malformed rows.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/container.h"

namespace gl {

// Serialize. Streams are used directly so tests need no filesystem.
void WriteContainersCsv(const Workload& workload, std::ostream& out);
void WriteEdgesCsv(const Workload& workload, std::ostream& out);

struct LoadResult {
  Workload workload;
  bool ok = false;
  std::string error;  // empty when ok; includes a line number otherwise
};

LoadResult ReadWorkloadCsv(std::istream& containers, std::istream& edges);

// Convenience file wrappers.
bool SaveWorkload(const Workload& workload, const std::string& containers_path,
                  const std::string& edges_path);
LoadResult LoadWorkload(const std::string& containers_path,
                        const std::string& edges_path);

}  // namespace gl
