// Synthetic Microsoft search trace (the DCTCP trace [19] used throughout the
// paper: container-graph snapshots in Fig. 5, partitions in Fig. 7(b), and
// the Fig. 13 large-scale simulation).
//
// The real trace is not public; this generator reproduces every statistic the
// paper states and consumes:
//   * 5488 vertices, ~128538 edges (mean distinct connections per VM ≈ 45);
//   * partition–aggregate search structure: a small tier of aggregators with
//    high fan-out over Index Serving Nodes (ISNs);
//   * ISNs hold a 12 GB in-memory index (constant memory weight, Fig. 5b)
//     and serve at most 120 connections (Fig. 12a);
//   * query flows of 1.6–2 KB, background (Hadoop URL-crawl) flows of
//     1–50 MB;
//   * vertex CPU derived from the Fig. 12 calibration models.
#pragma once

#include <vector>

#include "common/rng.h"
#include "workload/container.h"

namespace gl {

struct MsrTraceOptions {
  int num_vertices = 5488;
  double mean_degree = 45.0;       // → ~123k edges; paper reports 128538
  double aggregator_fraction = 0.08;  // high fan-out search aggregators
  double background_fraction = 0.10;  // Hadoop update/crawl vertices
  double max_connections_per_isn = 120.0;
  double min_query_flow_kb = 1.6;
  double max_query_flow_kb = 2.0;
  double min_background_flow_mb = 1.0;
  double max_background_flow_mb = 50.0;
  std::uint64_t seed = 0x315a;
};

struct MsrTrace {
  // One container per trace vertex. Search vertices use the Solr profile
  // shape (12 GB index); background vertices the Hadoop shape.
  Workload workload;
  std::vector<std::uint8_t> is_background;  // per vertex
  // Sampled flow sizes, for the flow-level benches and Fig 5 statistics.
  std::vector<double> query_flow_kb;
  std::vector<double> background_flow_mb;
};

MsrTrace GenerateMsrSearchTrace(const MsrTraceOptions& opts, Rng& rng);

// Expands each trace vertex into `per_vertex` containers (the Fig. 13 setup:
// 5488 vertices × 9 = 49392 containers). Each vertex becomes a service whose
// containers share the vertex's demand profile and are wired in a star; the
// vertex-to-vertex edges connect the service hubs with the original flow
// weights.
Workload ExpandTraceToContainers(const MsrTrace& trace, int per_vertex);

}  // namespace gl
