// Containers, application profiles (Table II) and workload graphs.
//
// A Workload is the raw material of the container graph (Sec. III-A):
// containers with ⟨CPU, Memory, Network⟩ demand vectors, plus communication
// edges weighted by the number of distinct flows between container pairs.
#pragma once

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/resource.h"

namespace gl {

enum class AppType {
  kMemcached,       // Twitter content caching backend
  kFrontend,        // Twitter content caching query generator
  kSolr,            // Apache Solr web search
  kHadoop,          // Naive Bayes classifier on Hadoop
  kNginx,           // media streaming
  kSparkRecommend,  // movie recommendation on Spark
  kSparkPageRank,   // page rank on Spark
  kCassandra,       // Cassandra database
};

[[nodiscard]] const char* AppTypeName(AppType t);

// Measured per-container characteristics (Table II of the paper for the four
// benchmarked workloads; companion profiles, measured the same way, for the
// additional Azure-mix applications).
struct AppProfile {
  AppType type;
  std::string name;
  Resource demand;      // vertex weight at the reference load
  // What the service owner *requests* (cores, memory) when deploying —
  // typically well above the measured demand; reservation-driven policies
  // (RC-Informed) pack against this, not against live utilization [15].
  Resource reserved;
  double flow_count;    // typical edge weight to a communication peer
  double reference_rps; // request rate at which `demand` was measured
  double base_service_ms GL_UNITS(ms);  // service time at an unloaded server
};

[[nodiscard]] const AppProfile& GetAppProfile(AppType t);
[[nodiscard]] const std::vector<AppProfile>& AllAppProfiles();

struct Container {
  ContainerId id;
  AppType app = AppType::kMemcached;
  Resource demand;  // current-epoch demand (vertex weight)
  // Service instance this container belongs to (e.g. one Spark job); used to
  // wire intra-service communication.
  int service = -1;
  // Containers sharing a valid replica_set are replicas of one another and
  // must land in different fault domains (Sec. IV-C).
  GroupId replica_set = GroupId::invalid();
};

struct CommunicationEdge {
  ContainerId a;
  ContainerId b;
  double flows GL_UNITS(count) = 0.0;  // distinct flow count — edge weight
  // Query edges carry latency-sensitive request/response traffic; task
  // completion time is measured across them (a → b → a).
  bool is_query = false;
};

struct Workload {
  std::vector<Container> containers;
  std::vector<CommunicationEdge> edges;

  [[nodiscard]] int size() const {
    return static_cast<int>(containers.size());
  }
  [[nodiscard]] Resource TotalDemand() const;
};

}  // namespace gl
