#include "workload/container.h"

#include "common/check.h"

namespace gl {

const char* AppTypeName(AppType t) {
  switch (t) {
    case AppType::kMemcached:
      return "Memcached";
    case AppType::kFrontend:
      return "Frontend";
    case AppType::kSolr:
      return "Apache Solr";
    case AppType::kHadoop:
      return "Hadoop (Naive Bayes)";
    case AppType::kNginx:
      return "Nginx (Media Streaming)";
    case AppType::kSparkRecommend:
      return "Spark (Recommendation)";
    case AppType::kSparkPageRank:
      return "Spark (PageRank)";
    case AppType::kCassandra:
      return "Cassandra";
  }
  return "?";
}

const std::vector<AppProfile>& AllAppProfiles() {
  // Demand rows for the four benchmarked workloads are Table II verbatim;
  // the frontend is the query generator half of the Twitter caching pair;
  // the rest are the Azure-mix background applications (Sec. VI-A-2),
  // profiled in the same units. `reserved` is what the owner requests at
  // deployment — cores and memory rounded up generously, per the usage-vs-
  // reservation gap Resource Central reports [15].
  static const std::vector<AppProfile> kProfiles = {
      {AppType::kMemcached, "Twitter Content Caching (Memcached)",
       {.cpu = 33.0, .mem_gb = 4.0, .net_mbps = 24.0},
       {.cpu = 100.0, .mem_gb = 4.0, .net_mbps = 0.0}, 4944.0, 2000.0, 0.8},
      // The query generator: request parsing, templating and response
      // assembly make it CPU-heavier than the cache it queries. Calibrated
      // so E-PVM's average server utilization lands at the paper's 32% on
      // the Wikipedia pattern.
      {AppType::kFrontend, "Twitter Content Caching (frontend)",
       {.cpu = 100.0, .mem_gb = 1.0, .net_mbps = 24.0},
       {.cpu = 250.0, .mem_gb = 1.0, .net_mbps = 0.0}, 4944.0, 2000.0, 0.4},
      {AppType::kSolr, "Web Search (Apache Solr)",
       {.cpu = 32.0, .mem_gb = 12.0, .net_mbps = 1.0},
       {.cpu = 400.0, .mem_gb = 12.0, .net_mbps = 0.0}, 50.0, 15.0, 18.0},
      {AppType::kHadoop, "Naive Bayes Classifier (Hadoop)",
       {.cpu = 376.0, .mem_gb = 2.0, .net_mbps = 328.0},
       {.cpu = 300.0, .mem_gb = 2.0, .net_mbps = 0.0}, 2.0, 1.0, 900.0},
      {AppType::kNginx, "Media Streaming (Nginx)",
       {.cpu = 54.0, .mem_gb = 57.0, .net_mbps = 320.0},
       {.cpu = 100.0, .mem_gb = 57.0, .net_mbps = 0.0}, 25.0, 40.0, 5.0},
      {AppType::kSparkRecommend, "Movie Recommendation (Spark)",
       {.cpu = 220.0, .mem_gb = 4.0, .net_mbps = 150.0},
       {.cpu = 250.0, .mem_gb = 4.0, .net_mbps = 0.0}, 8.0, 2.0, 400.0},
      {AppType::kSparkPageRank, "PageRank (Spark)",
       {.cpu = 300.0, .mem_gb = 4.0, .net_mbps = 200.0},
       {.cpu = 300.0, .mem_gb = 4.0, .net_mbps = 0.0}, 6.0, 2.0, 500.0},
      {AppType::kCassandra, "Cassandra",
       {.cpu = 45.0, .mem_gb = 4.0, .net_mbps = 60.0},
       {.cpu = 100.0, .mem_gb = 4.0, .net_mbps = 0.0}, 120.0, 800.0, 2.5},
  };
  return kProfiles;
}

const AppProfile& GetAppProfile(AppType t) {
  for (const auto& p : AllAppProfiles()) {
    if (p.type == t) return p;
  }
  GOLDILOCKS_CHECK_MSG(false, "unknown app type");
}

Resource Workload::TotalDemand() const {
  Resource total;
  for (const auto& c : containers) total += c.demand;
  return total;
}

}  // namespace gl
