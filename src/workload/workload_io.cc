#include "workload/workload_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace gl {
namespace {

AppType AppTypeFromName(const std::string& name, bool& known) {
  known = true;
  for (const auto& p : AllAppProfiles()) {
    if (name == AppTypeName(p.type)) return p.type;
  }
  known = false;
  return AppType::kCassandra;  // generic service profile
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

bool ParseDouble(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

bool ParseInt(const std::string& s, int& out) {
  try {
    std::size_t pos = 0;
    out = std::stoi(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

void WriteContainersCsv(const Workload& workload, std::ostream& out) {
  out << "id,app,cpu,mem_gb,net_mbps,service,replica_set\n";
  for (const auto& c : workload.containers) {
    out << c.id.value() << ',' << AppTypeName(c.app) << ',' << c.demand.cpu
        << ',' << c.demand.mem_gb << ',' << c.demand.net_mbps << ','
        << c.service << ',';
    if (c.replica_set.valid()) out << c.replica_set.value();
    out << '\n';
  }
}

void WriteEdgesCsv(const Workload& workload, std::ostream& out) {
  out << "a,b,flows,is_query\n";
  for (const auto& e : workload.edges) {
    out << e.a.value() << ',' << e.b.value() << ',' << e.flows << ','
        << (e.is_query ? 1 : 0) << '\n';
  }
}

LoadResult ReadWorkloadCsv(std::istream& containers, std::istream& edges) {
  LoadResult result;
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.error = "line " + std::to_string(line_no) + ": " + what;
    return result;
  };

  // --- containers -----------------------------------------------------------
  bool header = true;
  while (std::getline(containers, line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    const auto cells = SplitCsvLine(line);
    if (cells.size() != 7) return fail("expected 7 container columns");
    Container c;
    int id = 0;
    if (!ParseInt(cells[0], id) || id != result.workload.size()) {
      return fail("container ids must be dense and ascending from 0");
    }
    c.id = ContainerId{id};
    bool known = false;
    c.app = AppTypeFromName(cells[1], known);
    double cpu = 0, mem = 0, net = 0;
    if (!ParseDouble(cells[2], cpu) || !ParseDouble(cells[3], mem) ||
        !ParseDouble(cells[4], net) || cpu < 0 || mem < 0 || net < 0) {
      return fail("bad demand values");
    }
    c.demand = Resource{.cpu = cpu, .mem_gb = mem, .net_mbps = net};
    if (!ParseInt(cells[5], c.service)) return fail("bad service id");
    if (!cells[6].empty()) {
      int rs = 0;
      if (!ParseInt(cells[6], rs) || rs < 0) return fail("bad replica_set");
      c.replica_set = GroupId{rs};
    }
    result.workload.containers.push_back(c);
  }

  // --- edges --------------------------------------------------------------------
  line_no = 0;
  header = true;
  while (std::getline(edges, line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    const auto cells = SplitCsvLine(line);
    if (cells.size() != 4) return fail("expected 4 edge columns");
    int a = 0, b = 0, q = 0;
    double flows = 0;
    if (!ParseInt(cells[0], a) || !ParseInt(cells[1], b) ||
        !ParseDouble(cells[2], flows) || !ParseInt(cells[3], q)) {
      return fail("bad edge values");
    }
    const int n = result.workload.size();
    if (a < 0 || a >= n || b < 0 || b >= n || a == b) {
      return fail("edge endpoints out of range");
    }
    result.workload.edges.push_back(
        {ContainerId{a}, ContainerId{b}, flows, q != 0});
  }

  result.ok = true;
  return result;
}

bool SaveWorkload(const Workload& workload,
                  const std::string& containers_path,
                  const std::string& edges_path) {
  std::ofstream cf(containers_path);
  std::ofstream ef(edges_path);
  if (!cf || !ef) return false;
  WriteContainersCsv(workload, cf);
  WriteEdgesCsv(workload, ef);
  return static_cast<bool>(cf) && static_cast<bool>(ef);
}

LoadResult LoadWorkload(const std::string& containers_path,
                        const std::string& edges_path) {
  std::ifstream cf(containers_path);
  std::ifstream ef(edges_path);
  if (!cf || !ef) {
    LoadResult r;
    r.error = "cannot open input files";
    return r;
  }
  return ReadWorkloadCsv(cf, ef);
}

}  // namespace gl
