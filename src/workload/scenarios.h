// Testbed experiment scenarios (Sec. VI-A).
//
// A Scenario owns a fixed container universe (the workload graph) and
// animates it over epochs: per-epoch demand vectors, an active mask (the
// Azure mix starts and stops containers), and the aggregate request rate
// (for energy-per-request accounting).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/container.h"
#include "workload/traces.h"

namespace gl {

class Scenario {
 public:
  virtual ~Scenario() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual const Workload& workload() const = 0;
  [[nodiscard]] virtual int num_epochs() const = 0;
  [[nodiscard]] virtual double epoch_minutes() const = 0;

  // Demand vector per container for this epoch (zero if inactive).
  [[nodiscard]] virtual std::vector<Resource> DemandsAt(int epoch) const = 0;
  // Which containers exist this epoch.
  [[nodiscard]] virtual std::vector<std::uint8_t> ActiveAt(int epoch) const = 0;
  // Aggregate served request rate this epoch (requests/second).
  [[nodiscard]] virtual double TotalRpsAt(int epoch) const = 0;
};

// --- Twitter content caching on the Wikipedia pattern (Fig. 9) --------------
//
// `num_containers` front-end/Memcached containers in equal halves, organised
// into services of 4 FE + 4 MC with a heavy primary edge per pair (Table II:
// 4944 flows) and lighter secondary edges. Aggregate RPS follows the
// Wikipedia diurnal trace.
struct TwitterScenarioOptions {
  int num_containers = 176;
  int num_epochs = 60;
  double epoch_minutes = 1.0;
  double min_rps = 44000.0;
  double max_rps = 440000.0;
  std::uint64_t seed = 0x7717;
};

std::unique_ptr<Scenario> MakeTwitterCachingScenario(
    const TwitterScenarioOptions& opts = {});

// --- Rich application mixture on the Azure pattern (Fig. 10) ----------------
//
// Twitter caching pairs at a fixed 2K RPS per connection plus six background
// applications (Solr, Spark recommendation, Hadoop, Spark PageRank,
// Cassandra, Nginx). The live container count follows the Azure trace
// (149–221); demands fluctuate with the correlated-burst model.
struct AzureScenarioOptions {
  int min_containers = 149;
  int max_containers = 221;
  int num_epochs = 60;
  double epoch_minutes = 1.0;
  double memcached_rps_per_connection = 2000.0;
  // Average fraction of its Table II peak profile a background application
  // actually uses — cloud VMs run far below their provisioned peak, the
  // central observation of Resource Central [15]. Bursts multiply on top.
  double background_activity = 0.30;
  std::uint64_t seed = 0xa22e;
};

std::unique_ptr<Scenario> MakeAzureMixScenario(
    const AzureScenarioOptions& opts = {});

// --- Large-scale Microsoft-trace simulation (Fig. 13) -----------------------
//
// The synthetic Microsoft search trace expanded to `per_vertex` containers
// per trace vertex (paper: 5488 × 9 = 49392 containers) over an 88-hour
// horizon. Demands follow a diurnal shape with correlated bursts; memory
// (the in-memory index) stays flat.
struct MsrScenarioOptions {
  int per_vertex = 9;
  int num_epochs = 88;         // one epoch per hour in the paper
  double epoch_minutes = 60.0;
  int trace_vertices = 5488;
  std::uint64_t seed = 0x135a;
};

std::unique_ptr<Scenario> MakeMsrLargeScaleScenario(
    const MsrScenarioOptions& opts = {});

// Helper shared by scenario builders and tests: appends one service of
// `type` with `count` containers to `w`, wiring its intra-service edges
// (star around the first container plus nearest-neighbour mesh) with the
// profile's flow count. Returns the indices of the new containers.
std::vector<ContainerId> AppendService(Workload& w, AppType type, int count,
                                       int service_id);

}  // namespace gl
