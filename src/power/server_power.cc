#include "power/server_power.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gl {
namespace {

// Grid point i/n as a utilization fraction. The quotient is the explicit
// count → dimensionless conversion, so GL014 sees a declared boundary
// instead of a counter flowing into utilization arithmetic.
double GridFraction(int i, int n) GL_UNITS(dimensionless) {
  return static_cast<double>(i) / static_cast<double>(n);
}

}  // namespace

ServerPowerModel::ServerPowerModel(std::string name,
                                   double max_watts GL_UNITS(watts),
                                   double idle_fraction GL_UNITS(dimensionless),
                                   double pee_utilization
                                       GL_UNITS(dimensionless),
                                   double pee_power_fraction
                                       GL_UNITS(dimensionless))
    : name_(std::move(name)),
      max_watts_(max_watts),
      idle_fraction_(idle_fraction),
      pee_utilization_(pee_utilization),
      pee_power_fraction_(pee_power_fraction) {
  GOLDILOCKS_CHECK_GT(max_watts, 0.0);
  GOLDILOCKS_CHECK(idle_fraction >= 0.0 && idle_fraction < 1.0);
  GOLDILOCKS_CHECK(pee_utilization > 0.0 && pee_utilization <= 1.0);
  GOLDILOCKS_CHECK(pee_power_fraction >= idle_fraction &&
                   pee_power_fraction <= 1.0);
}

ServerPowerModel ServerPowerModel::Linear2010(double max_watts) {
  // Pure linear: PEE power fraction at u*=1 is the max; efficiency keeps
  // improving all the way to 100% load.
  return {"Linear-2010", max_watts, 0.30, 1.0, 1.0};
}

ServerPowerModel ServerPowerModel::Dell2018(double max_watts) {
  // Shapes matched to Fig 1(a): idle ≈ 35% of peak, PEE at 70% utilization
  // drawing ≈ 55% of peak, cubic climb to peak beyond.
  return {"Dell-2018", max_watts, 0.35, 0.70, 0.55};
}

ServerPowerModel ServerPowerModel::DellR940() {
  // Dell PowerEdge R940 per SPECpower_ssj2008 submissions: ~1.1 kW peak.
  return {"Dell PowerEdge R940", 1100.0, 0.35, 0.70, 0.55};
}

ServerPowerModel ServerPowerModel::Facebook1S() {
  // Single-socket SoC server: lower idle share than 4-socket machines.
  return {"Facebook 1S", 96.0, 0.30, 0.70, 0.55};
}

ServerPowerModel ServerPowerModel::MicrosoftBlade() {
  return {"Microsoft blade", 250.0, 0.35, 0.70, 0.55};
}

ServerPowerModel ServerPowerModel::WithPeePoint(
    double pee_utilization GL_UNITS(dimensionless),
    double max_watts GL_UNITS(watts)) {
  if (pee_utilization >= 1.0) return Linear2010(max_watts);
  // For ops-per-watt to peak exactly at u*, the cubic segment must start
  // steeper than the average power-per-utilization there:
  //   P*(1 - u*³) < 3(1 - P*)u*³  ⇔  P* < 3u*³ / (1 + 2u*³).
  // Stay 5% inside the bound, and keep the idle share strictly below P*.
  const double u3 GL_UNITS(dimensionless) =
      pee_utilization * pee_utilization * pee_utilization;
  const double pee_power GL_UNITS(dimensionless) =
      std::min(0.95 * 3.0 * u3 / (1.0 + 2.0 * u3), 0.95);
  const double idle GL_UNITS(dimensionless) = std::min(0.35, pee_power - 0.05);
  return {"PEE@" + std::to_string(static_cast<int>(pee_utilization * 100)) +
              "%",
          max_watts, std::max(idle, 0.05), pee_utilization, pee_power};
}

double ServerPowerModel::Power(double utilization GL_UNITS(dimensionless))
    const GL_UNITS(watts) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  const double idle GL_UNITS(watts) = idle_fraction_ * max_watts_;
  const double p_pee GL_UNITS(watts) = pee_power_fraction_ * max_watts_;
  const double u_star = pee_utilization_;
  if (u <= u_star) {
    return idle + (p_pee - idle) * (u / u_star);
  }
  const double u3 GL_UNITS(dimensionless) = u * u * u;
  const double s3 GL_UNITS(dimensionless) = u_star * u_star * u_star;
  return p_pee + (max_watts_ - p_pee) * (u3 - s3) / (1.0 - s3);
}

double ServerPowerModel::EfficiencyPerWatt(
    double utilization GL_UNITS(dimensionless)) const GL_UNITS(dimensionless) {
  const double u = std::clamp(utilization, 0.0, 1.0);
  const double p = Power(u);
  return p > 0.0 ? u / p * max_watts_ : 0.0;  // normalised ops per watt
}

double ServerPowerModel::PeakEfficiencyUtilization() const {
  // The parameterisation guarantees the maximum sits at pee_utilization_;
  // find it numerically anyway so tests catch bad parameter sets.
  double best_u GL_UNITS(dimensionless) = 0.0;
  double best_e GL_UNITS(dimensionless) = 0.0;
  for (int i = 1; i <= 1000; ++i) {
    const double u = GridFraction(i, 1000);
    const double e = EfficiencyPerWatt(u);
    if (e > best_e) {
      best_e = e;
      best_u = u;
    }
  }
  return best_u;
}

}  // namespace gl
