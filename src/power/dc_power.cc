#include "power/dc_power.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {
namespace {

// All Fig 3 rows use the modern PEE-at-70% curve scaled to the spec's server.
ServerPowerModel AnalysisServerModel(const DataCenterSpec& spec) {
  return ServerPowerModel("analysis", spec.server_max_watts, 0.35, 0.70, 0.55);
}

}  // namespace

Fig3Rows AnalyzeDataCenter(const DataCenterSpec& spec,
                           const DcAnalysisOptions& opts) {
  const ServerPowerModel server = AnalysisServerModel(spec);
  const SwitchPowerModel tor("tor", spec.tor_switch_watts);
  const SwitchPowerModel fabric("fabric", spec.fabric_switch_watts);
  const auto servers = static_cast<double>(spec.servers);
  const auto tors = static_cast<double>(spec.tor_switches);
  const auto fabrics = static_cast<double>(spec.fabric_switches);
  const double servers_per_tor = servers / tors;

  Fig3Rows rows;

  // Baseline: every server on at the baseline utilization; every switch on
  // with all ports enabled.
  rows.baseline.server_watts = servers * server.Power(opts.baseline_server_util);
  rows.baseline.tor_watts = tors * tor.Power(1.0);
  rows.baseline.fabric_watts = fabrics * fabric.Power(1.0);

  // Traffic packing: server load untouched. Flows are consolidated onto the
  // fewest links (bin packing at link granularity): the fabric only needs
  // the baseline link utilization plus backup headroom; ToR switches must
  // stay up (servers hang off them) but can disable idle uplink ports.
  {
    const double fabric_fraction = std::clamp(
        opts.baseline_link_util + opts.backup_fraction, 0.0, 1.0);
    const double active_fabric = std::ceil(fabrics * fabric_fraction);
    rows.traffic_packing.server_watts = rows.baseline.server_watts;
    rows.traffic_packing.tor_watts = tors * tor.Power(fabric_fraction);
    rows.traffic_packing.fabric_watts = active_fabric * fabric.Power(1.0);
  }

  // Task packing: consolidate server load into the fewest servers below the
  // packing ceiling, turn the rest off, then gate racks with no active
  // servers and scale the fabric with the active fraction.
  {
    const double total_load = servers * opts.baseline_server_util;
    const double active_servers =
        std::ceil(total_load / opts.pack_target_util);
    const double packed_util = total_load / active_servers;
    const double active_tors = std::ceil(active_servers / servers_per_tor);
    const double active_share = active_tors / tors;
    const double fabric_fraction = std::clamp(
        active_share * opts.baseline_link_util / opts.baseline_server_util +
            opts.backup_fraction,
        opts.backup_fraction, 1.0);
    rows.task_packing.server_watts = active_servers * server.Power(packed_util);
    rows.task_packing.tor_watts = active_tors * tor.Power(1.0);
    rows.task_packing.fabric_watts =
        std::ceil(fabrics * fabric_fraction) * fabric.Power(1.0);
  }

  return rows;
}

NetworkPowerResult ComputeNetworkPower(
    const Topology& topo, std::span<const std::uint8_t> server_active,
    std::span<const double> node_traffic_mbps,
    std::span<const SwitchPowerModel> level_models,
    const GatingOptions& opts) {
  obs::TraceSpan span("power.network");
  GOLDILOCKS_CHECK(server_active.size() ==
                   static_cast<std::size_t>(topo.num_servers()));
  GOLDILOCKS_CHECK_GE(static_cast<int>(level_models.size()),
                      topo.num_levels());

  // Post-order pass: which subtrees contain an active server, and what
  // fraction of each node's children are active.
  const int n = topo.num_nodes();
  std::vector<std::uint8_t> subtree_active(static_cast<std::size_t>(n), 0);
  std::vector<double> active_child_fraction(static_cast<std::size_t>(n), 0.0);

  // Nodes were appended parent-before-child by the factories, so a reverse
  // index scan is a valid post-order for activity propagation.
  for (int i = n - 1; i >= 0; --i) {
    const auto& node = topo.node(NodeId{i});
    if (node.level == 0) {
      subtree_active[static_cast<std::size_t>(i)] =
          server_active[static_cast<std::size_t>(node.server.value())];
      continue;
    }
    int active_children = 0;
    for (const auto c : node.children) {
      if (subtree_active[static_cast<std::size_t>(c.value())]) {
        ++active_children;
      }
    }
    subtree_active[static_cast<std::size_t>(i)] = active_children > 0;
    active_child_fraction[static_cast<std::size_t>(i)] =
        node.children.empty()
            ? 0.0
            : static_cast<double>(active_children) /
                  static_cast<double>(node.children.size());
  }

  NetworkPowerResult result;
  for (int i = 0; i < n; ++i) {
    const auto& node = topo.node(NodeId{i});
    if (node.level == 0 || node.physical_switches == 0) continue;
    result.total_switches += node.physical_switches;
    const auto& model = level_models[static_cast<std::size_t>(node.level)];

    if (!opts.gate_idle_switches) {
      result.watts += node.physical_switches * model.Power(1.0);
      result.active_switches += node.physical_switches;
      continue;
    }
    if (!subtree_active[static_cast<std::size_t>(i)]) continue;  // gated off

    if (node.level == 1) {
      // A rack's single ToR is on; idle downlink ports are disabled.
      result.watts += node.physical_switches *
                      model.Power(active_child_fraction[
                          static_cast<std::size_t>(i)]);
      result.active_switches += node.physical_switches;
      continue;
    }
    // Fabric tier: scale the number of powered switches with demand —
    // measured uplink+internal traffic when available, otherwise the
    // fraction of active child subtrees — plus backup headroom.
    double demand_fraction GL_UNITS(dimensionless) =
        active_child_fraction[static_cast<std::size_t>(i)];
    if (!node_traffic_mbps.empty() && node.uplink_capacity_mbps > 0.0) {
      demand_fraction =
          node_traffic_mbps[static_cast<std::size_t>(i)] /
          node.uplink_capacity_mbps;
    } else if (!node_traffic_mbps.empty() && node.uplink_capacity_mbps == 0) {
      // Root: use the max of the children's uplink demands.
      double frac = 0.0;
      for (const auto c : node.children) {
        const auto& cn = topo.node(c);
        if (cn.uplink_capacity_mbps > 0.0) {
          frac = std::max(frac,
                          node_traffic_mbps[static_cast<std::size_t>(
                              c.value())] /
                              cn.uplink_capacity_mbps);
        }
      }
      demand_fraction = frac;
    }
    const double fraction =
        std::clamp(demand_fraction + opts.backup_fraction,
                   opts.backup_fraction, 1.0);
    const int active = std::max(
        1, static_cast<int>(std::ceil(node.physical_switches * fraction)));
    result.watts += active * model.Power(1.0);
    result.active_switches += active;
  }
  static obs::Counter& gated = obs::MetricsRegistry::Global().GetCounter(
      "power.switches_gated", obs::MetricKind::kDeterministic);
  gated.Add(static_cast<std::uint64_t>(
      std::max(0, result.total_switches - result.active_switches)));
  return result;
}

}  // namespace gl
