#include "power/spec_population.h"

#include "common/check.h"

namespace gl {

const std::vector<PeeYearDistribution>& SpecPeeDistributions() {
  // Read off Fig 1(b): in 2010 nearly every submission peaked at full load;
  // by 2018 the mode sits at 70% with a substantial 60% tail.
  static const std::vector<PeeYearDistribution> kDist = {
      {2008, {0.88, 0.08, 0.04, 0.00, 0.00}},
      {2010, {0.80, 0.12, 0.06, 0.02, 0.00}},
      {2012, {0.55, 0.20, 0.15, 0.08, 0.02}},
      {2014, {0.30, 0.22, 0.25, 0.17, 0.06}},
      {2016, {0.12, 0.15, 0.30, 0.30, 0.13}},
      {2018, {0.05, 0.10, 0.28, 0.38, 0.19}},
  };
  return kDist;
}

std::array<double, 5> PeeSharesForYear(int year) {
  const auto& dists = SpecPeeDistributions();
  for (const auto& d : dists) {
    if (d.year == year) return d.share;
  }
  GOLDILOCKS_CHECK_MSG(false, "no SPEC distribution for requested year");
}

std::vector<SpecServer> SampleSpecPopulation(int n, Rng& rng) {
  GOLDILOCKS_CHECK_GT(n, 0);
  const auto& dists = SpecPeeDistributions();
  std::vector<SpecServer> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& d = dists[rng.NextBelow(dists.size())];
    double r GL_UNITS(dimensionless) = rng.NextDouble();
    std::size_t level = 0;
    for (; level + 1 < d.share.size(); ++level) {
      if (r < d.share[level]) break;
      r -= d.share[level];
    }
    const double pee GL_UNITS(dimensionless) = kPeeUtilizationLevels[level];
    fleet.push_back(
        {d.year, pee, ServerPowerModel::WithPeePoint(pee, 750.0)});
  }
  return fleet;
}

}  // namespace gl
