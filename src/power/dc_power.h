// Data-center-level power accounting.
//
// Two consumers:
//   * the Fig. 3 analysis — closed-form bin-packing estimates of the power
//     breakdown of the five Table I data centers under Baseline / Traffic
//     Packing / Task Packing (the paper's Sec. II argument that task packing
//     saves ~53% of total power while traffic packing saves only ~8%);
//   * the cluster simulator — switch/link gating for an instantiated
//     Topology given which servers are active and how much traffic each
//     subtree sends upward. A few backup paths stay powered for bursts
//     (Sec. I: "a few extra backup paths are reserved for bursty traffic").
#pragma once

#include <cstdint>
#include <span>

#include "power/server_power.h"
#include "topology/datacenters.h"
#include "topology/topology.h"

namespace gl {

struct PowerBreakdown {
  double server_watts GL_UNITS(watts) = 0.0;
  double tor_watts GL_UNITS(watts) = 0.0;
  double fabric_watts GL_UNITS(watts) = 0.0;

  [[nodiscard]] double total() const GL_UNITS(watts) {
    return server_watts + tor_watts + fabric_watts;
  }
  [[nodiscard]] double dcn_watts() const GL_UNITS(watts) {
    return tor_watts + fabric_watts;
  }
  [[nodiscard]] double dcn_share() const GL_UNITS(dimensionless) {
    return total() > 0.0 ? dcn_watts() / total() : 0.0;
  }
};

struct DcAnalysisOptions {
  // [1]-[3]: servers run at 20-30%.
  double baseline_server_util GL_UNITS(dimensionless) = 0.20;
  // [4],[5]: DCN links ~10% utilised.
  double baseline_link_util GL_UNITS(dimensionless) = 0.10;
  // Packing policies' ceiling.
  double pack_target_util GL_UNITS(dimensionless) = 0.95;
  // Fabric capacity kept on as backup.
  double backup_fraction GL_UNITS(dimensionless) = 0.10;
};

struct Fig3Rows {
  PowerBreakdown baseline;
  PowerBreakdown traffic_packing;  // consolidate flows, gate idle fabric
  PowerBreakdown task_packing;     // consolidate servers, gate idle racks
};

// Closed-form analysis of one Table I data center.
Fig3Rows AnalyzeDataCenter(const DataCenterSpec& spec,
                           const DcAnalysisOptions& opts = {});

// --- topology-based switch gating (simulator path) --------------------------

struct GatingOptions {
  // Fraction of a node's fabric capacity kept powered beyond current demand.
  double backup_fraction GL_UNITS(dimensionless) = 0.10;
  // When false, every switch is always on (E-PVM-style no-gating baseline).
  bool gate_idle_switches = true;
};

struct NetworkPowerResult {
  double watts GL_UNITS(watts) = 0.0;
  int active_switches = 0;
  int total_switches = 0;
};

// Switch power for `topo` with the given server activity. `node_traffic_mbps`
// maps NodeId → traffic on that node's uplink bundle; pass an empty span to
// fall back to active-subtree-fraction scaling. `level_models[l]` is the
// switch model for hierarchy level l (index 0 unused).
NetworkPowerResult ComputeNetworkPower(
    const Topology& topo, std::span<const std::uint8_t> server_active,
    std::span<const double> node_traffic_mbps,
    std::span<const SwitchPowerModel> level_models, const GatingOptions& opts);

}  // namespace gl
