// Synthetic SPECpower_ssj2008 server population (Fig 1b of the paper).
//
// The paper analysed 419 vendor submissions and found that the utilization at
// which servers reach Peak Energy Efficiency drifted from ~100% (2010 era)
// down into the 60–80% band by 2018. The real result database is not
// redistributable, so this module encodes the per-year PEE-utilization share
// distribution read off Fig 1(b) and samples synthetic fleets from it — the
// only facts Goldilocks consumes.
#pragma once

#include <array>
#include <vector>

#include "common/rng.h"
#include "power/server_power.h"

namespace gl {

// Share of servers submitted in `year` whose PEE utilization is 100 / 90 /
// 80 / 70 / 60 percent. Shares sum to 1.
struct PeeYearDistribution {
  int year = 0;
  // Index 0 → 100%, 1 → 90%, ... 4 → 60%.
  std::array<double, 5> share GL_UNITS(dimensionless){};
};

inline constexpr std::array<double, 5> kPeeUtilizationLevels = {1.0, 0.9, 0.8,
                                                                0.7, 0.6};

// Distributions for 2008–2018 (even years), monotone drift toward 60–80%.
const std::vector<PeeYearDistribution>& SpecPeeDistributions();

struct SpecServer {
  int year = 0;
  double pee_utilization GL_UNITS(dimensionless) = 0.0;
  ServerPowerModel model;
};

// Samples a fleet of `n` servers across the year range, mirroring the 419
// analysed submissions. Deterministic given the Rng.
std::vector<SpecServer> SampleSpecPopulation(int n, Rng& rng);

// Share of sampled servers at each PEE level for one year (Fig 1b bars).
std::array<double, 5> PeeSharesForYear(int year);

}  // namespace gl
