// Server power models (Sec. II of the paper).
//
// Modern servers are *not* power proportional: below the Peak Energy
// Efficiency (PEE) utilization only the DVFS frequency scales, so power grows
// linearly; above it both voltage and frequency rise and P = C·V²·f grows
// cubically. The model is therefore piecewise:
//
//   P(u) = idle + (P_pee - idle) · u/u*                    for u ≤ u*
//   P(u) = P_pee + (max - P_pee) · (u³ - u*³)/(1 - u*³)    for u > u*
//
// With the shipped parameters, operations-per-watt is strictly increasing on
// [0, u*] and strictly decreasing on (u*, 1], i.e. the PEE point is exactly
// u* (verified by unit tests). Legacy pre-2010 servers use u* = 1 (pure
// linear curve; PEE at 100%), reproducing the dotted line in Fig. 1(a).
#pragma once

#include <string>

#include "common/resource.h"  // GL_UNITS

namespace gl {

class ServerPowerModel {
 public:
  // General piecewise model. idle_fraction and pee_power_fraction are
  // fractions of max_watts; pee_utilization in (0, 1].
  ServerPowerModel(std::string name, double max_watts, double idle_fraction,
                   double pee_utilization, double pee_power_fraction);

  // --- presets --------------------------------------------------------------
  // Strictly linear pre-2010 server (Fig 1a dotted line); PEE at 100%.
  static ServerPowerModel Linear2010(double max_watts = 300.0);
  // The "Dell-2018" curve of Fig 1(a): PEE at 70% utilization.
  static ServerPowerModel Dell2018(double max_watts = 750.0);
  // Dell PowerEdge R940, the Fig 13 simulation server.
  static ServerPowerModel DellR940();
  // Facebook 1S SoC server (96 W), Table I.
  static ServerPowerModel Facebook1S();
  // Microsoft blade server (250 W), Table I.
  static ServerPowerModel MicrosoftBlade();
  // Arbitrary PEE point at the given utilization (ablation studies).
  static ServerPowerModel WithPeePoint(double pee_utilization,
                                       double max_watts = 750.0);

  // Power draw in watts at `utilization` in [0, 1] (clamped). A powered-off
  // server draws 0 — use 0 only via ServerOff(), never Power(0), which is
  // idle-but-on.
  [[nodiscard]] double Power(double utilization GL_UNITS(dimensionless)) const
      GL_UNITS(watts);
  [[nodiscard]] double NormalizedPower(
      double utilization GL_UNITS(dimensionless)) const
      GL_UNITS(dimensionless) {
    return Power(utilization) / max_watts_;
  }
  static constexpr double ServerOff() { return 0.0; }

  // Work completed per watt, normalising full-load throughput to 1.0.
  [[nodiscard]] double EfficiencyPerWatt(double utilization) const;

  // The utilization that maximises EfficiencyPerWatt (== pee_utilization by
  // construction; exposed for tests and benches).
  [[nodiscard]] double PeakEfficiencyUtilization() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double max_watts() const { return max_watts_; }
  [[nodiscard]] double idle_watts() const GL_UNITS(watts) {
    return idle_fraction_ * max_watts_;
  }
  [[nodiscard]] double pee_utilization() const { return pee_utilization_; }

 private:
  std::string name_;
  double max_watts_ GL_UNITS(watts);
  double idle_fraction_ GL_UNITS(dimensionless);
  double pee_utilization_ GL_UNITS(dimensionless);
  double pee_power_fraction_ GL_UNITS(dimensionless);
};

// Switch power (Table I models). Switch draw is dominated by chassis +
// fabric; ports add a smaller load-independent share that can be saved by
// disabling idle ports (traffic packing).
class SwitchPowerModel {
 public:
  SwitchPowerModel(std::string name, double max_watts GL_UNITS(watts),
                   double port_power_share GL_UNITS(dimensionless) = 0.3)
      : name_(std::move(name)),
        max_watts_(max_watts),
        port_power_share_(port_power_share) {}

  // Power with a fraction of ports enabled (1.0 = all ports).
  [[nodiscard]] double Power(
      double active_port_fraction GL_UNITS(dimensionless) = 1.0) const
      GL_UNITS(watts) {
    const double chassis GL_UNITS(watts) =
        max_watts_ * (1.0 - port_power_share_);
    return chassis + max_watts_ * port_power_share_ * active_port_fraction;
  }
  static constexpr double SwitchOff() { return 0.0; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double max_watts() const { return max_watts_; }

  static SwitchPowerModel FacebookWedge() { return {"Facebook Wedge", 282.0}; }
  static SwitchPowerModel Facebook6Pack() { return {"Facebook 6 Pack", 1400.0}; }
  static SwitchPowerModel Altoline6940() { return {"HPE Altoline 6940", 315.0}; }
  static SwitchPowerModel Altoline6920() { return {"HPE Altoline 6920", 315.0}; }
  // The testbed's HPE 3800 48-port switch.
  static SwitchPowerModel Hpe3800() { return {"HPE 3800", 160.0}; }

 private:
  std::string name_;
  double max_watts_ GL_UNITS(watts);
  double port_power_share_ GL_UNITS(dimensionless);
};

}  // namespace gl
