// Cross-module invariant auditing.
//
// Goldilocks' power and TCT numbers are only meaningful while a handful of
// invariants hold — per-server demand within capacity and the PEE cap,
// Eq. (4)/(5) bandwidth reservations within residual link capacity, replicas
// separated across fault domains, a well-formed container graph and topology
// tree, a sane power model. A scheduler acting on corrupted state silently
// destroys exactly the gains being measured, so the auditor walks the full
// system state after an epoch and reports every violation it can find as a
// structured finding instead of trusting scattered GOLDILOCKS_CHECKs.
//
// The auditor is read-only and side-effect free: it never mutates the state
// it inspects and never aborts. Callers decide whether findings are fatal
// (the simulator's fail-fast hook turns errors into a CHECK failure; the
// standalone tools/audit runner just prints them).
//
// Invariant catalog:
//   conservation    — every placed container is active, maps to a valid
//                     server, and demand vectors are finite and non-negative
//                     (the vector representation of Placement structurally
//                     rules out double placement; the remaining failure
//                     modes are phantom and out-of-range placements).
//   capacity        — aggregate placed demand fits every server's capacity
//                     in all three resource dimensions.
//   pee-cap         — aggregate CPU/network demand also respects the Peak
//                     Energy Efficiency ceiling (memory has its own
//                     ceiling). Overcommit policies (E-PVM) violate this on
//                     purpose, so it defaults to a warning.
//   bandwidth       — every DCN uplink has non-negative residual capacity
//                     given the Virtual-Cluster reservations booked on it,
//                     and no reservation is negative or non-finite.
//   replica-domains — containers sharing a replica_set occupy distinct
//                     fault domains (distinct servers at level 0; racks at
//                     level 1, ...).
//   graph           — symmetric adjacency, no self-loops, finite weights,
//                     non-negative vertex demands and balance weights.
//                     Negative *edge* weights are legal in the container
//                     graph (replica anti-affinity) and gated by an option.
//   topology        — single root, consistent parent/child links, levels
//                     strictly decreasing toward the leaves, servers exactly
//                     at level 0, finite non-negative capacities.
//   power-model     — P(u) finite, non-negative, monotone non-decreasing in
//                     utilization, and bounded by max_watts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/resource.h"
#include "graph/graph.h"
#include "power/server_power.h"
#include "schedulers/placement.h"
#include "topology/topology.h"
#include "workload/container.h"

namespace gl {

enum class AuditSeverity { kWarning, kError };
enum class AuditClass {
  kConservation,
  kCapacity,
  kPeeCap,
  kBandwidth,
  kReplicaDomains,
  kGraph,
  kTopology,
  kPowerModel,
};

[[nodiscard]] const char* AuditSeverityName(AuditSeverity s);
[[nodiscard]] const char* AuditClassName(AuditClass c);

struct AuditFinding {
  AuditSeverity severity = AuditSeverity::kError;
  AuditClass invariant = AuditClass::kConservation;
  // Which part of the system the finding points at ("placement",
  // "topology", "graph", "power", "workload").
  std::string subsystem;
  std::string message;
  // Offending entity ids; interpretation depends on the invariant class
  // (ContainerId values for conservation/replica findings, ServerId values
  // for capacity, NodeId values for topology/bandwidth, vertex indices for
  // graph, none for power-model findings).
  std::vector<std::int32_t> offending_ids;
};

struct AuditReport {
  std::vector<AuditFinding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] int errors() const;
  [[nodiscard]] int warnings() const;
  [[nodiscard]] int CountFor(AuditClass c) const;
  [[nodiscard]] bool Has(AuditClass c) const { return CountFor(c) > 0; }
  // One line per finding, "severity [class/subsystem] message (ids: ...)".
  [[nodiscard]] std::string ToString() const;

  void Append(const AuditReport& other);
};

struct AuditOptions {
  // PEE packing ceiling audited for CPU and network; memory gets its own.
  double pee_utilization = 0.70;
  double memory_ceiling = 1.0;
  // Overcommit policies exceed the PEE cap deliberately; capacity overflow
  // is always an error, the PEE cap only when this is set.
  bool pee_cap_is_error = false;
  // Fault-domain level replicas must be separated at: 0 = distinct servers,
  // 1 = distinct racks, ...
  int replica_domain_level = 0;
  // Placement never fails hard, so a saturated cluster can legitimately
  // co-locate replicas; flip to false to downgrade those findings.
  bool replica_violation_is_error = true;
  // Container graphs carry negative anti-affinity edges by design; set
  // false when auditing capacity graphs, where every weight is a distance.
  bool allow_negative_edges = true;
  // Utilization samples for the power-model monotonicity sweep.
  int power_model_samples = 64;
  // Findings per invariant class are capped so a massively corrupted state
  // produces a readable report rather than one line per container.
  int max_findings_per_class = 16;
};

// Non-owning view of the state under audit. Null/empty members skip the
// checks that need them, so callers can audit any subset of the system.
struct SystemView {
  const Topology* topology = nullptr;
  const Workload* workload = nullptr;
  std::span<const Resource> demands;      // indexed by ContainerId value
  std::span<const std::uint8_t> active;   // indexed by ContainerId value
  const Placement* placement = nullptr;
  const Graph* container_graph = nullptr;
  const ServerPowerModel* server_power = nullptr;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditOptions opts = {});

  // Runs every applicable invariant family over `view`.
  [[nodiscard]] AuditReport AuditAll(const SystemView& view) const;

  // Individual invariant families; each appends findings to `out`.
  void AuditTopology(const Topology& topo, AuditReport& out) const;
  void AuditBandwidth(const Topology& topo, AuditReport& out) const;
  // Conservation + capacity + PEE cap for one placement.
  void AuditPlacement(const Placement& placement,
                      std::span<const Resource> demands,
                      std::span<const std::uint8_t> active,
                      const Topology& topo, AuditReport& out) const;
  void AuditReplicaDomains(const Placement& placement,
                           const Workload& workload, const Topology& topo,
                           AuditReport& out) const;
  void AuditGraph(const Graph& graph, AuditReport& out) const;
  void AuditPowerModel(const ServerPowerModel& model, AuditReport& out) const;
  // Power-curve form of the model audit: samples `power_at_utilization`
  // over [0, 1] and checks finiteness, non-negativity, the `max_watts`
  // bound and monotone non-decrease. ServerPowerModel's ctor validates its
  // parameters, so this is the seam external/custom curves come in through.
  void AuditPowerCurve(const std::function<double(double)>& power_at_utilization,
                       double max_watts, const std::string& name,
                       AuditReport& out) const;

  [[nodiscard]] const AuditOptions& options() const { return opts_; }

 private:
  AuditOptions opts_;
};

}  // namespace gl
