#include "analysis/invariant_auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "common/stable_map.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gl {

namespace {

// Capacity comparisons use the shared kResourceEps tolerance via
// gl::WithinCap (common/resource.h) — the auditor must accept exactly what
// Resource::FitsIn accepts, or the checker and the checked code drift apart.

[[nodiscard]] bool FiniteNonNegative(double v GL_UNITS(any)) {
  return std::isfinite(v) && v >= 0.0;
}

[[nodiscard]] bool FiniteNonNegative(const Resource& r) {
  return FiniteNonNegative(r.cpu) && FiniteNonNegative(r.mem_gb) &&
         FiniteNonNegative(r.net_mbps);
}

std::string Format(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, a, b);
  return buf;
}

// Appends a finding unless the class is already at its report cap.
class Collector {
 public:
  Collector(AuditReport& out, int cap) : out_(out), cap_(cap) {}

  void Add(AuditSeverity severity, AuditClass invariant,
           const char* subsystem, std::string message,
           std::vector<std::int32_t> ids = {}) {
    if (Count(invariant) >= cap_) return;
    out_.findings.push_back(AuditFinding{severity, invariant, subsystem,
                                         std::move(message), std::move(ids)});
  }

 private:
  [[nodiscard]] int Count(AuditClass c) const {
    int n = 0;
    for (const auto& f : out_.findings) n += f.invariant == c;
    return n;
  }

  AuditReport& out_;
  int cap_;
};

}  // namespace

const char* AuditSeverityName(AuditSeverity s) {
  return s == AuditSeverity::kError ? "error" : "warning";
}

const char* AuditClassName(AuditClass c) {
  switch (c) {
    case AuditClass::kConservation:
      return "conservation";
    case AuditClass::kCapacity:
      return "capacity";
    case AuditClass::kPeeCap:
      return "pee-cap";
    case AuditClass::kBandwidth:
      return "bandwidth";
    case AuditClass::kReplicaDomains:
      return "replica-domains";
    case AuditClass::kGraph:
      return "graph";
    case AuditClass::kTopology:
      return "topology";
    case AuditClass::kPowerModel:
      return "power-model";
  }
  return "unknown";
}

int AuditReport::errors() const {
  int n = 0;
  for (const auto& f : findings) n += f.severity == AuditSeverity::kError;
  return n;
}

int AuditReport::warnings() const {
  int n = 0;
  for (const auto& f : findings) n += f.severity == AuditSeverity::kWarning;
  return n;
}

int AuditReport::CountFor(AuditClass c) const {
  int n = 0;
  for (const auto& f : findings) n += f.invariant == c;
  return n;
}

std::string AuditReport::ToString() const {
  if (findings.empty()) return "audit clean: no findings\n";
  std::string out;
  for (const auto& f : findings) {
    out += AuditSeverityName(f.severity);
    out += " [";
    out += AuditClassName(f.invariant);
    out += '/';
    out += f.subsystem;
    out += "] ";
    out += f.message;
    if (!f.offending_ids.empty()) {
      out += " (ids:";
      for (const auto id : f.offending_ids) {
        out += ' ';
        out += std::to_string(id);
      }
      out += ')';
    }
    out += '\n';
  }
  return out;
}

void AuditReport::Append(const AuditReport& other) {
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
}

InvariantAuditor::InvariantAuditor(AuditOptions opts) : opts_(opts) {}

AuditReport InvariantAuditor::AuditAll(const SystemView& view) const {
  obs::TraceSpan span("audit.all");
  AuditReport report;
  if (view.topology != nullptr) {
    AuditTopology(*view.topology, report);
    AuditBandwidth(*view.topology, report);
  }
  if (view.placement != nullptr && view.topology != nullptr &&
      !view.demands.empty()) {
    AuditPlacement(*view.placement, view.demands, view.active, *view.topology,
                   report);
  }
  if (view.placement != nullptr && view.topology != nullptr &&
      view.workload != nullptr) {
    AuditReplicaDomains(*view.placement, *view.workload, *view.topology,
                        report);
  }
  if (view.container_graph != nullptr) {
    AuditGraph(*view.container_graph, report);
  }
  if (view.server_power != nullptr) {
    AuditPowerModel(*view.server_power, report);
  }
  // One deterministic counter per invariant class; the class name is part
  // of the metric name so gl_report can break findings down by family.
  for (const auto& f : report.findings) {
    std::string name = "audit.findings.";
    name += AuditClassName(f.invariant);
    obs::MetricsRegistry::Global()
        .GetCounter(name, obs::MetricKind::kDeterministic)
        .Increment();
  }
  return report;
}

void InvariantAuditor::AuditTopology(const Topology& topo,
                                     AuditReport& out) const {
  Collector add(out, opts_.max_findings_per_class);
  const int n = topo.num_nodes();

  if (n == 0) return;
  if (!topo.root().valid()) {
    add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
            "non-empty topology has no root");
    return;
  }

  int servers_seen = 0;
  for (int i = 0; i < n; ++i) {
    const NodeId id{i};
    const auto& node = topo.node(id);
    if (node.id != id) {
      add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
              "node id does not match its index", {i});
    }
    if (id == topo.root()) {
      if (node.parent.valid()) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "root node has a parent", {i});
      }
    } else {
      if (!node.parent.valid() || node.parent.value() >= n) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "non-root node has no valid parent", {i});
        continue;
      }
      const auto& parent = topo.node(node.parent);
      if (parent.level <= node.level) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "child level is not below its parent's",
                {i, node.parent.value()});
      }
      if (std::find(parent.children.begin(), parent.children.end(), id) ==
          parent.children.end()) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "node is missing from its parent's child list",
                {i, node.parent.value()});
      }
    }
    for (const auto child : node.children) {
      if (!child.valid() || child.value() >= n) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "child list references a nonexistent node", {i});
      } else if (topo.node(child).parent != id) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "child does not point back at this parent",
                {i, child.value()});
      }
    }
    if (node.level < 0) {
      add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
              "negative hierarchy level", {i});
    }
    if ((node.level == 0) != node.server.valid()) {
      add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
              "server id validity does not match level-0 status", {i});
    }
    if (node.server.valid()) {
      ++servers_seen;
      if (node.server.value() >= topo.num_servers()) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "leaf references an out-of-range server id", {i});
      } else if (topo.server_node(node.server) != id) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "server_node mapping disagrees with the leaf",
                {i, node.server.value()});
      } else if (!FiniteNonNegative(topo.server_capacity(node.server))) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "server capacity " +
                    topo.server_capacity(node.server).ToString() +
                    " has a negative or non-finite dimension",
                {node.server.value()});
      }
      if (!node.children.empty()) {
        add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
                "server leaf has children", {i});
      }
    }
    if (!std::isfinite(node.uplink_capacity_mbps) ||
        node.uplink_capacity_mbps < 0.0) {
      add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
              "uplink capacity is negative or non-finite", {i});
    }
    if (node.physical_switches < 0 || node.physical_uplinks < 0) {
      add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
              "negative physical switch/link count", {i});
    }
  }

  if (servers_seen != topo.num_servers()) {
    add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
            Format("topology has %.0f level-0 leaves but %.0f servers",
                   servers_seen, topo.num_servers()));
  }

  // Reachability: every node must hang off the root (cycle-free by the
  // parent/level checks above; this catches disconnected islands).
  std::vector<std::uint8_t> reached(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> stack{topo.root()};
  reached[static_cast<std::size_t>(topo.root().value())] = 1;
  int count = 1;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    for (const auto child : topo.node(cur).children) {
      if (!child.valid() || child.value() >= n) continue;
      auto& r = reached[static_cast<std::size_t>(child.value())];
      if (r) continue;
      r = 1;
      ++count;
      stack.push_back(child);
    }
  }
  if (count != n) {
    std::vector<std::int32_t> orphans;
    for (int i = 0; i < n && static_cast<int>(orphans.size()) < 8; ++i) {
      if (!reached[static_cast<std::size_t>(i)]) orphans.push_back(i);
    }
    add.Add(AuditSeverity::kError, AuditClass::kTopology, "topology",
            "nodes unreachable from the root", std::move(orphans));
  }
}

void InvariantAuditor::AuditBandwidth(const Topology& topo,
                                      AuditReport& out) const {
  Collector add(out, opts_.max_findings_per_class);
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const NodeId id{i};
    const double reserved = topo.uplink_reserved(id);
    const double capacity = topo.uplink_capacity(id);
    if (!std::isfinite(reserved) || reserved < -kResourceEps) {
      add.Add(AuditSeverity::kError, AuditClass::kBandwidth, "topology",
              "uplink reservation is negative or non-finite", {i});
      continue;
    }
    // The root has no uplink; factories give it capacity 0 and nothing may
    // reserve on it.
    if (!WithinCap(reserved, capacity)) {
      add.Add(AuditSeverity::kError, AuditClass::kBandwidth, "topology",
              Format("uplink over-reserved: %.1f Mbps reserved on "
                     "%.1f Mbps of capacity",
                     reserved, capacity),
              {i});
    }
  }
}

void InvariantAuditor::AuditPlacement(const Placement& placement,
                                      std::span<const Resource> demands,
                                      std::span<const std::uint8_t> active,
                                      const Topology& topo,
                                      AuditReport& out) const {
  Collector add(out, opts_.max_findings_per_class);
  const int num_servers = topo.num_servers();

  if (placement.server_of.size() > demands.size()) {
    add.Add(AuditSeverity::kError, AuditClass::kConservation, "placement",
            Format("placement covers %.0f containers but only %.0f demand "
                   "vectors exist",
                   static_cast<double>(placement.server_of.size()),
                   static_cast<double>(demands.size())));
  }

  std::vector<Resource> loads(static_cast<std::size_t>(num_servers));
  const std::size_t n =
      std::min(placement.server_of.size(), demands.size());
  for (std::size_t i = 0; i < n; ++i) {
    const ServerId s = placement.server_of[i];
    const auto cid = static_cast<std::int32_t>(i);
    const bool is_active = i < active.size() && active[i] != 0;
    if (!s.valid()) {
      if (is_active && !demands[i].IsZero()) {
        add.Add(AuditSeverity::kWarning, AuditClass::kConservation,
                "placement", "active container is unplaced", {cid});
      }
      continue;
    }
    if (s.value() >= num_servers) {
      add.Add(AuditSeverity::kError, AuditClass::kConservation, "placement",
              "container placed on a nonexistent server",
              {cid, s.value()});
      continue;
    }
    if (!active.empty() && !is_active) {
      add.Add(AuditSeverity::kError, AuditClass::kConservation, "placement",
              "inactive container holds a placement", {cid, s.value()});
    }
    if (!FiniteNonNegative(demands[i])) {
      add.Add(AuditSeverity::kError, AuditClass::kConservation, "workload",
              "demand vector " + demands[i].ToString() +
                  " has a negative or non-finite dimension",
              {cid});
      continue;  // keep corrupt demand out of the capacity sums
    }
    loads[static_cast<std::size_t>(s.value())] += demands[i];
  }

  for (int s = 0; s < num_servers; ++s) {
    const auto& load = loads[static_cast<std::size_t>(s)];
    if (load.IsZero()) continue;
    const Resource& cap = topo.server_capacity(ServerId{s});
    if (!load.FitsIn(cap)) {
      add.Add(AuditSeverity::kError, AuditClass::kCapacity, "placement",
              "server load " + load.ToString() + " exceeds capacity " +
                  cap.ToString(),
              {s});
      continue;  // the PEE cap is implied-violated; one finding is enough
    }
    const Resource ceiling{cap.cpu * opts_.pee_utilization,
                           cap.mem_gb * opts_.memory_ceiling,
                           cap.net_mbps * opts_.pee_utilization};
    if (!load.FitsIn(ceiling)) {
      add.Add(opts_.pee_cap_is_error ? AuditSeverity::kError
                                     : AuditSeverity::kWarning,
              AuditClass::kPeeCap, "placement",
              "server load " + load.ToString() + " exceeds the PEE ceiling " +
                  ceiling.ToString(),
              {s});
    }
  }
}

void InvariantAuditor::AuditReplicaDomains(const Placement& placement,
                                           const Workload& workload,
                                           const Topology& topo,
                                           AuditReport& out) const {
  Collector add(out, opts_.max_findings_per_class);
  // replica_set → fault-domain node → members placed inside it.
  std::unordered_map<GroupId,
                     std::unordered_map<NodeId, std::vector<std::int32_t>>>
      domains;
  for (const auto& c : workload.containers) {
    if (!c.replica_set.valid()) continue;
    const ServerId s = placement.of(c.id);
    if (!s.valid() || s.value() >= topo.num_servers()) continue;
    NodeId domain = topo.server_node(s);
    if (opts_.replica_domain_level > 0) {
      const NodeId up = topo.AncestorAt(domain, opts_.replica_domain_level);
      // Domains above the root collapse to the root (always shared).
      domain = up.valid() ? up : topo.root();
    }
    domains[c.replica_set][domain].push_back(c.id.value());
  }
  // Sorted snapshots: findings must come out in (set, domain) order, not
  // hash-bucket order, or two identical runs produce differently-ordered
  // reports.
  for (const auto& [set_id, by_domain] : SortedItems(domains)) {
    for (const auto& [domain, members] : SortedItems(by_domain)) {
      if (members.size() < 2) continue;
      std::vector<std::int32_t> ids = members;
      std::sort(ids.begin(), ids.end());
      add.Add(opts_.replica_violation_is_error ? AuditSeverity::kError
                                               : AuditSeverity::kWarning,
              AuditClass::kReplicaDomains, "placement",
              Format("replica set %.0f has %.0f members in one "
                     "fault domain",
                     static_cast<double>(set_id.value()),
                     static_cast<double>(members.size())),
              std::move(ids));
    }
  }
}

void InvariantAuditor::AuditGraph(const Graph& graph, AuditReport& out) const {
  Collector add(out, opts_.max_findings_per_class);
  const VertexIndex n = graph.num_vertices();
  for (VertexIndex v = 0; v < n; ++v) {
    if (!FiniteNonNegative(graph.demand(v))) {
      add.Add(AuditSeverity::kError, AuditClass::kGraph, "graph",
              "vertex demand " + graph.demand(v).ToString() +
                  " has a negative or non-finite dimension",
              {v});
    }
    if (!FiniteNonNegative(graph.balance_weight(v))) {
      add.Add(AuditSeverity::kError, AuditClass::kGraph, "graph",
              "vertex balance weight is negative or non-finite", {v});
    }
    for (const auto& e : graph.neighbors(v)) {
      if (e.to < 0 || e.to >= n) {
        add.Add(AuditSeverity::kError, AuditClass::kGraph, "graph",
                "edge references a nonexistent vertex", {v});
        continue;
      }
      if (e.to == v) {
        add.Add(AuditSeverity::kError, AuditClass::kGraph, "graph",
                "self-loop edge", {v});
        continue;
      }
      if (!std::isfinite(e.weight)) {
        add.Add(AuditSeverity::kError, AuditClass::kGraph, "graph",
                "edge weight is non-finite", {v, e.to});
      } else if (!opts_.allow_negative_edges && e.weight < 0.0) {
        add.Add(AuditSeverity::kError, AuditClass::kGraph, "graph",
                Format("negative edge weight %.3f (limit %.0f)", e.weight,
                       0.0),
                {v, e.to});
      }
      // Symmetry: the reverse edge must exist with the same weight. Only
      // checked for v < e.to so each pair is reported once.
      if (v < e.to) {
        bool matched = false;
        for (const auto& back : graph.neighbors(e.to)) {
          if (back.to != v) continue;
          matched = std::isfinite(back.weight) == std::isfinite(e.weight) &&
                    (!std::isfinite(e.weight) ||
                     ApproxEq(back.weight, e.weight));
          break;
        }
        if (!matched) {
          add.Add(AuditSeverity::kError, AuditClass::kGraph, "graph",
                  "edge has no matching reverse edge of equal weight",
                  {v, e.to});
        }
      }
    }
  }
}

void InvariantAuditor::AuditPowerModel(const ServerPowerModel& model,
                                       AuditReport& out) const {
  AuditPowerCurve([&model](double u) { return model.Power(u); },
                  model.max_watts(), model.name(), out);
}

void InvariantAuditor::AuditPowerCurve(
    const std::function<double(double)>& power_at_utilization,
    double max_watts, const std::string& name, AuditReport& out) const {
  Collector add(out, opts_.max_findings_per_class);
  const int samples = std::max(2, opts_.power_model_samples);
  double prev = -1.0;
  for (int i = 0; i < samples; ++i) {
    const double u = static_cast<double>(i) / (samples - 1);
    const double p = power_at_utilization(u);
    if (!std::isfinite(p) || p < 0.0) {
      add.Add(AuditSeverity::kError, AuditClass::kPowerModel, "power",
              name + Format(": power at utilization %.3f is %.3f W "
                            "(negative or non-finite)",
                            u, p));
      return;
    }
    if (!WithinCap(p, max_watts)) {
      add.Add(AuditSeverity::kError, AuditClass::kPowerModel, "power",
              name + Format(": power %.1f W exceeds the model's max %.1f W",
                            p, max_watts));
      return;
    }
    if (p + kResourceEps < prev) {
      add.Add(AuditSeverity::kError, AuditClass::kPowerModel, "power",
              name + Format(": power is not monotone: drops to %.3f W "
                            "after %.3f W",
                            p, prev));
      return;
    }
    prev = p;
  }
}

}  // namespace gl
