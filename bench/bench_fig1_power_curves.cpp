// Fig. 1 of the paper.
//  (a) Normalized power vs load for a legacy (2010, linear) and a modern
//      (Dell-2018, cubic-beyond-PEE) server, against the strictly
//      power-proportional line.
//  (b) Distribution of Peak-Energy-Efficiency utilization across a
//      SPECpower-style population of 419 servers, by year: the PEE point
//      drifts from 100% (2010) into the 60–80% band (2018).
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "power/server_power.h"
#include "power/spec_population.h"

int main() {
  using namespace gl;

  PrintBanner("Fig 1(a): normalized power vs load");
  const auto linear = ServerPowerModel::Linear2010();
  const auto modern = ServerPowerModel::Dell2018();
  Table curves({"load %", "proportional", "Server-2010", "Dell-2018",
                "ops/W (Dell-2018)"});
  for (int load = 0; load <= 100; load += 10) {
    const double u = load / 100.0;
    curves.AddRow({Table::Int(load), Table::Num(u, 3),
                   Table::Num(linear.NormalizedPower(u), 3),
                   Table::Num(modern.NormalizedPower(u), 3),
                   Table::Num(modern.EfficiencyPerWatt(u), 3)});
  }
  curves.Print();
  std::printf(
      "Peak energy efficiency: Server-2010 at %.0f%% load, Dell-2018 at "
      "%.0f%% load\n",
      linear.PeakEfficiencyUtilization() * 100.0,
      modern.PeakEfficiencyUtilization() * 100.0);

  PrintBanner("Fig 1(b): PEE-utilization share by year (SPEC population)");
  Table shares({"year", "100%", "90%", "80%", "70%", "60%"});
  for (const auto& d : SpecPeeDistributions()) {
    shares.AddRow({Table::Int(d.year), Table::Pct(d.share[0], 0),
                   Table::Pct(d.share[1], 0), Table::Pct(d.share[2], 0),
                   Table::Pct(d.share[3], 0), Table::Pct(d.share[4], 0)});
  }
  shares.Print();

  // Sampled fleet, as the paper's 419 analysed submissions.
  Rng rng(419);
  const auto fleet = SampleSpecPopulation(419, rng);
  int band[3] = {0, 0, 0};  // 100-90, 80-70, 60
  for (const auto& s : fleet) {
    if (s.pee_utilization >= 0.9) {
      ++band[0];
    } else if (s.pee_utilization >= 0.7) {
      ++band[1];
    } else {
      ++band[2];
    }
  }
  std::printf(
      "\nSampled fleet of 419 servers: %d peak at 90-100%%, %d at 70-80%%, "
      "%d at 60%%\n",
      band[0], band[1], band[2]);
  return 0;
}
