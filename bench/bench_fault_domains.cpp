// Failure resilience (Sec. IV-C): quantify what replica anti-affinity buys.
//
// A replicated workload (multiple services, 3 replicas each) is placed by
// Goldilocks twice — once with the replica sets labelled (negative edges →
// fault-domain separation), once with the labels stripped (the scheduler is
// free to colocate replicas, as a locality-only placer would love to: the
// replication traffic between replicas is real affinity!). Every rack is
// then killed in turn and we count outages and recovery times.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "core/goldilocks.h"
#include "sim/failure.h"

int main() {
  using namespace gl;

  const Resource cap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};
  const Topology topo = Topology::FatTree(4, cap, 1000.0);

  // 12 replicated services, 3 replicas each, with clients and heavy
  // replica↔replica replication traffic (the trap: affinity says colocate).
  Workload labelled;
  Rng rng(42);
  for (int svc = 0; svc < 12; ++svc) {
    std::vector<ContainerId> replicas;
    for (int r = 0; r < 3; ++r) {
      Container c;
      c.id = ContainerId{labelled.size()};
      c.app = AppType::kCassandra;
      c.demand = {.cpu = 250, .mem_gb = 6, .net_mbps = 40};
      c.service = svc;
      c.replica_set = GroupId{svc};
      labelled.containers.push_back(c);
      replicas.push_back(c.id);
    }
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      for (std::size_t j = i + 1; j < replicas.size(); ++j) {
        labelled.edges.push_back({replicas[i], replicas[j], 200.0});
      }
    }
    for (int k = 0; k < 4; ++k) {
      Container c;
      c.id = ContainerId{labelled.size()};
      c.app = AppType::kFrontend;
      c.demand = {.cpu = 120, .mem_gb = 1, .net_mbps = 15};
      c.service = svc;
      labelled.containers.push_back(c);
      labelled.edges.push_back(
          {replicas[rng.NextBelow(3)], c.id, 150.0, true});
    }
  }
  Workload unlabelled = labelled;
  for (auto& c : unlabelled.containers) c.replica_set = GroupId::invalid();

  std::vector<Resource> demands;
  for (const auto& c : labelled.containers) demands.push_back(c.demand);
  const std::vector<std::uint8_t> active(labelled.containers.size(), 1);

  // Placement sees `placement_view` (labels kept or stripped); impact
  // analysis always uses the labelled workload — the replicas exist either
  // way, the question is only whether the scheduler knew about them.
  auto run = [&](const Workload& placement_view, const char* name,
                 Table& t) {
    SchedulerInput input;
    input.workload = &placement_view;
    input.demands = demands;
    input.active = active;
    input.topology = &topo;
    GoldilocksScheduler sched;
    const Placement p = sched.Place(input);

    int outages = 0, degraded = 0, failures = 0;
    double worst_recovery = 0.0, total_recovery = 0.0;
    for (const auto rack : topo.NodesAtLevel(1)) {
      const auto servers = topo.ServersUnder(rack);
      const auto impact = InjectFailure(p, labelled, topo,
                                        FailureDomain::kRack,
                                        servers.front());
      if (impact.displaced.empty()) continue;
      ++failures;
      outages += static_cast<int>(impact.unavailable_sets.size());
      degraded += static_cast<int>(impact.degraded_sets.size());
      const auto rec = PlanRecovery(p, impact, labelled, demands, topo);
      worst_recovery = std::max(worst_recovery, rec.recovery_makespan_ms);
      total_recovery += rec.recovery_makespan_ms;
    }
    t.AddRow({name, Table::Int(p.NumActiveServers()), Table::Int(failures),
              Table::Int(outages), Table::Int(degraded),
              Table::Num(worst_recovery / 1000.0, 1),
              Table::Num(failures ? total_recovery / failures / 1000.0 : 0.0,
                         1)});
  };

  PrintBanner("Kill every rack in turn: outages with and without fault "
              "domains");
  Table t({"replica labels", "servers used", "rack failures with impact",
           "service outages", "degraded (≥1 replica up)",
           "worst recovery s", "mean recovery s"});
  run(labelled, "anti-affinity on", t);
  run(unlabelled, "anti-affinity off", t);
  t.Print();
  std::printf(
      "\n→ without labels the min-cut (correctly!) colocates replicas — "
      "their replication traffic is affinity — and single-rack failures "
      "black out whole services. The negative-edge labels of Sec. IV-C turn "
      "every such outage into a degraded-but-up event.\n");
  return 0;
}
