// Fig. 9 of the paper: Twitter content caching on the Wikipedia trace
// pattern — 176 containers on the 16-server testbed, aggregate RPS swinging
// 44K–440K over 60 minutes. Series reported: (a) active servers, (b) total
// power, (c) task completion time, (d) energy per request, for E-PVM, mPP,
// Borg, RC-Informed and Goldilocks.
//
// Expected shape: Goldilocks lowest power (~22.7% saving vs E-PVM in the
// paper) and by far the lowest TCT; Borg/mPP fewest active servers but the
// worst TCT; RC-Informed in between.
#include "bench_common.h"

int main() {
  using namespace gl;
  using namespace gl::bench;

  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeTwitterCachingScenario();
  const auto runs = RunAllPolicies(*scenario, topo);

  PrintBanner("Fig 9(a-d): time series, every 6 minutes");
  PrintTimeSeries(runs, 6, "minute");

  PrintBanner("Fig 9: 60-minute averages");
  PrintAverages(runs);
  return 0;
}
