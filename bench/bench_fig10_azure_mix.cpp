// Fig. 10 of the paper: a rich mixture of applications following the Azure
// trace pattern — 149–221 containers (Twitter caching at 2K RPS per
// connection plus Solr, Spark×2, Hadoop, Cassandra, Nginx) on the
// 16-server testbed. Series: active servers, power, TCT.
//
// Expected shape: at high load the packers' savings shrink toward E-PVM
// (the paper sees 1%–6.6%), Goldilocks still wins on power at equal
// utilization thanks to the PEE ceiling, and has much shorter TCT.
#include "bench_common.h"

int main() {
  using namespace gl;
  using namespace gl::bench;

  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeAzureMixScenario();
  const auto runs = RunAllPolicies(*scenario, topo);

  PrintBanner("Fig 10(a-c): time series, every 6 minutes");
  PrintTimeSeries(runs, 6, "minute");

  PrintBanner("Fig 10: 60-minute averages");
  PrintAverages(runs);

  // The paper's companion observation: container count varies with the
  // Azure pattern.
  PrintBanner("Container churn (Azure pattern)");
  Table t({"minute", "live containers"});
  for (int e = 0; e < scenario->num_epochs(); e += 6) {
    const auto active = scenario->ActiveAt(e);
    int live = 0;
    for (const auto a : active) live += a;
    t.AddRow({Table::Int(e), Table::Int(live)});
  }
  t.Print();
  return 0;
}
