// Fig. 13 of the paper: trace-driven simulation at scale — a 28-ary fat
// tree (5488 servers, 980 switches), 49392 containers derived from the
// Microsoft search trace, Dell PowerEdge R940 server power and HPE Altoline
// 6940 switch power, simulated over 88 hours.
//
// Expected shape (Fig 13a-d): E-PVM keeps all 5488 servers on and draws the
// most power; Borg/mPP pack hardest (fewest servers); RC-Informed holds a
// reservation-driven server count; Goldilocks needs more servers than the
// packers but draws the least power and has the shortest TCT.
//
// The full 88-epoch horizon runs in minutes; set GOLDILOCKS_FIG13_EPOCHS to
// adjust (default 22 epochs = 4-hour sampling of the same 88-hour span).
//
//   bench_fig13_large_scale [--threads=N] [--json out.json]
//
// --threads fans the five policies out concurrently and parallelizes
// Goldilocks' partitioner; results are bit-identical at every width
// (DESIGN.md §9). --json writes per-policy {name, threads, wall_ms,
// containers, servers} records (EXPERIMENTS.md, "Machine-readable output").
#include <cstdlib>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace gl;
  using namespace gl::bench;

  const char* json_path = JsonPathFromArgs(argc, argv);
  const int threads = ThreadsFromArgs(argc, argv);

  int epochs = 22;
  double epoch_minutes = 240.0;
  if (const char* env = std::getenv("GOLDILOCKS_FIG13_EPOCHS")) {
    epochs = std::max(2, std::atoi(env));
    epoch_minutes = 88.0 * 60.0 / epochs;
  }

  // Dell R940-class servers: 72 cores, 1.5 TB (4-socket box), 10G NIC.
  const Resource server_cap{.cpu = 7200, .mem_gb = 1536, .net_mbps = 10000};
  const Topology topo = Topology::FatTree(28, server_cap, 10000.0);
  std::printf("Topology: %d servers, %d switches (28-ary fat tree)\n",
              topo.num_servers(), topo.num_switches());

  MsrScenarioOptions sopts;
  sopts.num_epochs = epochs;
  sopts.epoch_minutes = epoch_minutes;
  const auto scenario = MakeMsrLargeScaleScenario(sopts);
  std::printf("Workload: %d containers, %zu edges (%d-hour horizon)\n",
              scenario->workload().size(), scenario->workload().edges.size(),
              static_cast<int>(epochs * epoch_minutes / 60.0));

  RunnerOptions ropts;
  ropts.server_power = ServerPowerModel::DellR940();
  ropts.switch_models.assign(static_cast<std::size_t>(topo.num_levels()),
                             SwitchPowerModel::Altoline6940());
  // Flow-level network cost per hop: query + partial-response transfer and
  // the incast queueing a search fan-out suffers on shared fabric links —
  // milliseconds, not microseconds (cf. DCTCP's incast measurements on the
  // very trace this reproduces). Hourly epochs already carry the burst
  // multipliers in the demands, so intra-epoch amplification is small.
  ropts.latency.per_hop_ms = 2.0;
  ropts.latency.burst_amplification = 0.05;
  ropts.latency.sla_ms = 100.0;
  ropts.threads = threads;

  // Goldilocks re-partitions every 4 simulated hours; the grouping is reused
  // in between (the paper's epoch-based scheduling with low migration cost).
  const auto runs = RunAllPolicies(*scenario, topo, ropts, 4);

  PrintBanner("Fig 13(a-c): time series");
  PrintTimeSeries(runs, std::max(1, epochs / 8), "epoch");

  PrintBanner("Fig 13(d): averages (normalized to E-PVM)");
  const auto epvm = runs.front().result.Average();
  Table t({"policy", "active servers", "norm servers", "power kW",
           "norm power", "TCT ms", "norm TCT"});
  for (const auto& r : runs) {
    const auto m = r.result.Average();
    t.AddRow({r.name, Table::Int(m.active_servers),
              Table::Num(static_cast<double>(m.active_servers) /
                             epvm.active_servers, 3),
              Table::Num(m.total_watts / 1000.0, 1),
              Table::Num(m.total_watts / epvm.total_watts, 3),
              Table::Num(m.mean_tct_ms, 2),
              Table::Num(m.mean_tct_ms / epvm.mean_tct_ms, 3)});
  }
  t.Print();

  const auto& gold = runs.back().result.Average();
  std::printf(
      "\nGoldilocks vs E-PVM: %.1f%% power saving, %.2fx TCT (paper: 27%% "
      "saving, 0.85x TCT)\n",
      (1.0 - gold.total_watts / epvm.total_watts) * 100.0,
      gold.mean_tct_ms / epvm.mean_tct_ms);

  if (json_path != nullptr) {
    std::vector<ScaleRecord> records;
    for (const auto& r : runs) {
      // A single timed run: wall_ms doubles as the median, repeats = 1.
      records.push_back({r.name, threads, r.result.wall_ms,
                         scenario->workload().size(),
                         r.result.Average().active_servers,
                         r.result.wall_ms, 1});
    }
    if (!WriteScaleJson(json_path, records)) return 1;
    std::printf("wrote %zu records to %s\n", records.size(), json_path);
  }
  return 0;
}
