// Flow-level validation of the locality claim: the analytic TCT model used
// by the Fig 9/10/13 benches is cross-checked here with the max-min-fair
// flow simulator. Query flows (1.6–2 KB) and background flows (1–50 MB)
// from a scaled Microsoft-trace snapshot are replayed over the placements
// produced by E-PVM, Borg and Goldilocks on an 8-ary fat tree; flow
// completion times fall out of the fluid simulation, no queueing model
// involved.
//
// Expected shape: Goldilocks' colocation keeps most query flows off the
// fabric entirely (near-zero FCT), and shields the remaining ones from the
// elephants; spread placements put queries behind 50 MB background flows on
// shared links.
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/goldilocks.h"
#include "netsim/flowsim.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "workload/msr_trace.h"

int main() {
  using namespace gl;

  // 8-ary fat tree: 128 servers, 1G links, modest machines.
  const Resource cap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};
  const Topology topo = Topology::FatTree(8, cap, 1000.0);

  // Scaled trace: 500 vertices (≈4 containers per server).
  MsrTraceOptions topts;
  topts.num_vertices = 500;
  Rng rng(19);
  const auto trace = GenerateMsrSearchTrace(topts, rng);
  const Workload& workload = trace.workload;
  std::vector<Resource> demands;
  for (const auto& c : workload.containers) demands.push_back(c.demand);
  const std::vector<std::uint8_t> active(workload.containers.size(), 1);

  PrintBanner("Flow-level FCT by placement policy (8-ary fat tree)");
  Table t({"policy", "servers", "query FCT ms (mean)", "query p99",
           "background FCT ms", "intra-server queries"});

  auto evaluate = [&](Scheduler& sched) {
    SchedulerInput input;
    input.workload = &workload;
    input.demands = demands;
    input.active = active;
    input.topology = &topo;
    const Placement p = sched.Place(input);

    FlowSimulator sim(topo);
    Rng frng(58);
    std::vector<int> query_flows, background_flows;
    int colocated = 0, sampled_queries = 0;
    for (const auto& e : workload.edges) {
      const ServerId sa = p.of(e.a);
      const ServerId sb = p.of(e.b);
      if (!sa.valid() || !sb.valid()) continue;
      if (e.is_query) {
        // Sample a fraction of query edges to bound the fluid simulation.
        if (!frng.Chance(0.12)) continue;
        ++sampled_queries;
        if (sa == sb) ++colocated;
        query_flows.push_back(
            sim.AddFlow(sa, sb, frng.Uniform(1.6e3, 2.0e3)));
      } else if (frng.Chance(0.5)) {
        background_flows.push_back(
            sim.AddFlow(sa, sb, frng.Uniform(1e6, 50e6)));
      }
    }
    sim.RunToCompletion();

    std::vector<double> qf, bf;
    for (const int f : query_flows) qf.push_back(sim.flow(f).completion_ms);
    for (const int f : background_flows) {
      bf.push_back(sim.flow(f).completion_ms);
    }
    RunningStats qs, bs;
    for (const double x : qf) qs.Add(x);
    for (const double x : bf) bs.Add(x);
    t.AddRow({sched.name(), Table::Int(p.NumActiveServers()),
              Table::Num(qs.mean(), 3), Table::Num(Percentile(qf, 99), 3),
              Table::Num(bs.mean(), 0),
              Table::Pct(sampled_queries
                             ? static_cast<double>(colocated) /
                                   sampled_queries
                             : 0.0)});
  };

  {
    EPvmScheduler s;
    evaluate(s);
  }
  {
    BorgScheduler s;
    evaluate(s);
  }
  {
    GoldilocksScheduler s;
    evaluate(s);
  }
  t.Print();
  std::printf(
      "\nThe fluid simulation shows the same trade-off as the analytic "
      "model: spreading over every server (E-PVM) buys the lowest "
      "contention at maximum power; aggressive packing (Borg) puts query "
      "flows behind elephants; Goldilocks' locality groups get within "
      "~1.5x of the all-servers-on FCT while consolidating.\n");
  return 0;
}
