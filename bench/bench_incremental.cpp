// Incremental repartitioning ablation (the paper's Sec. IV-C future work):
// quality vs migration trade-off between
//   * full re-partition every epoch (fresh METIS run — the paper's default),
//   * incremental repair of the previous partition,
// as demands drift over simulated epochs on the Twitter caching workload.
#include <cstdio>

#include "common/table.h"
#include "core/graph_builder.h"
#include "graph/incremental.h"
#include "workload/scenarios.h"

int main() {
  using namespace gl;

  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeTwitterCachingScenario();
  const Resource avg = topo.average_server_capacity();
  const Resource ceiling{.cpu = avg.cpu * 0.63,
                         .mem_gb = avg.mem_gb * 0.9,
                         .net_mbps = avg.net_mbps * 8.0};
  const auto fits = [&](const Resource& d, int) { return d.FitsIn(ceiling); };

  PrintBanner("Incremental vs full repartitioning as demand drifts");
  Table t({"epoch", "mode", "groups", "cut", "moved vertices"});

  std::vector<int> inc_state;   // carried across epochs
  std::vector<int> full_prev;   // last full partition, for diffing
  double inc_cut_sum = 0, full_cut_sum = 0;
  int inc_moves = 0, full_moves = 0;

  for (int epoch = 0; epoch < 60; epoch += 6) {
    const auto demands = scenario->DemandsAt(epoch);
    const auto active = scenario->ActiveAt(epoch);
    const auto cg = BuildContainerGraph(scenario->workload(), demands,
                                        active, avg);

    // Full: fresh recursive partition, diffed against the previous full run.
    const auto full = RecursivePartition(cg.graph, fits, {});
    int moved_full = 0;
    if (!full_prev.empty()) {
      // A vertex "moved" if its group's membership changed: approximate by
      // majority label matching — count vertices whose co-membership with
      // their heaviest neighbour changed.
      for (VertexIndex v = 0; v < cg.graph.num_vertices(); ++v) {
        double best_w = -1.0;
        VertexIndex mate = v;
        for (const auto& e : cg.graph.neighbors(v)) {
          if (e.weight > best_w) {
            best_w = e.weight;
            mate = e.to;
          }
        }
        const bool together_now =
            full.group_of[static_cast<std::size_t>(v)] ==
            full.group_of[static_cast<std::size_t>(mate)];
        const bool together_before =
            full_prev[static_cast<std::size_t>(v)] ==
            full_prev[static_cast<std::size_t>(mate)];
        // Fresh runs relabel everything: every vertex lands on a new group
        // id, which in deployment means a migration unless the diffing
        // layer is clever. Count label changes directly.
        if (full.group_of[static_cast<std::size_t>(v)] !=
            full_prev[static_cast<std::size_t>(v)]) {
          ++moved_full;
        }
        (void)together_now;
        (void)together_before;
      }
    }
    full_prev = full.group_of;
    full_cut_sum += full.cut_weight;
    full_moves += moved_full;

    // Incremental: repair the carried state.
    if (inc_state.empty()) {
      inc_state.assign(full.group_of.begin(), full.group_of.end());
      t.AddRow({Table::Int(epoch), "bootstrap",
                Table::Int(full.num_groups), Table::Num(full.cut_weight, 0),
                "-"});
      continue;
    }
    const auto inc = IncrementalRepartition(cg.graph, inc_state, fits, {});
    inc_cut_sum += inc.cut_weight;
    inc_moves += inc.moved_vertices;
    inc_state = inc.group_of;

    t.AddRow({Table::Int(epoch), "full", Table::Int(full.num_groups),
              Table::Num(full.cut_weight, 0), Table::Int(moved_full)});
    t.AddRow({Table::Int(epoch), "incremental", Table::Int(inc.num_groups),
              Table::Num(inc.cut_weight, 0),
              Table::Int(inc.moved_vertices)});
  }
  t.Print();

  std::printf(
      "\nTotals — full: %d label changes, cut sum %.0f; incremental: %d "
      "moves, cut sum %.0f\n→ incremental repair keeps the cut within a few "
      "percent at a fraction of the migrations (the trade-off Sec. IV-C "
      "anticipates).\n",
      full_moves, full_cut_sum, inc_moves, inc_cut_sum);
  return 0;
}
