// Table II of the paper: vertex weight (CPU / memory / network demand) and
// edge weight (distinct flow count) of the four benchmarked containerized
// applications, plus the companion profiles used by the Azure mixture.
#include "common/table.h"
#include "workload/container.h"

int main() {
  using namespace gl;

  PrintBanner("Table II: vertex and edge weights of data center workloads");
  Table t({"workload", "CPU (%)", "Memory (GB)", "Network (Mbps)",
           "Flow Count", "service ms"});
  for (const auto& p : AllAppProfiles()) {
    t.AddRow({p.name, Table::Num(p.demand.cpu, 0),
              Table::Num(p.demand.mem_gb, 0),
              Table::Num(p.demand.net_mbps, 0), Table::Num(p.flow_count, 0),
              Table::Num(p.base_service_ms, 1)});
  }
  t.Print();
  return 0;
}
