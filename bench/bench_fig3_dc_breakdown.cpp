// Fig. 3 + Table I of the paper: power breakdown of five production-scale
// data centers (Google Jupiter, Facebook fabric, VL2(96), Fat-tree(32),
// Fat-tree(72)) under Baseline / Traffic Packing / Task Packing.
//
// Expected shape: the DCN is ~20% of total power; traffic packing saves a
// single-digit share of the total while task packing saves about half.
#include <cstdio>

#include "common/table.h"
#include "netsim/traffic_packing.h"
#include "power/dc_power.h"

int main() {
  using namespace gl;

  PrintBanner("Table I: data center configurations");
  Table cfg({"data center", "servers", "ToR", "fabric", "links",
             "server model", "switch model"});
  for (const auto& dc : TableOneDataCenters()) {
    cfg.AddRow({dc.name, Table::Int(dc.servers), Table::Int(dc.tor_switches),
                Table::Int(dc.fabric_switches), Table::Int(dc.links),
                dc.server_model, dc.switch_model});
  }
  cfg.Print();

  PrintBanner("Fig 3: normalized power breakdown (baseline = 1.0)");
  Table t({"data center", "config", "server", "DCN", "total",
           "DCN share", "saving"});
  double traffic_sum = 0.0, task_sum = 0.0, dcn_sum = 0.0;
  for (const auto& dc : TableOneDataCenters()) {
    const auto rows = AnalyzeDataCenter(dc);
    const double base = rows.baseline.total();
    auto add = [&](const char* name, const PowerBreakdown& b) {
      t.AddRow({dc.name, name, Table::Num(b.server_watts / base, 3),
                Table::Num(b.dcn_watts() / base, 3),
                Table::Num(b.total() / base, 3), Table::Pct(b.dcn_share()),
                Table::Pct(1.0 - b.total() / base)});
    };
    add("baseline", rows.baseline);
    add("traffic packing", rows.traffic_packing);
    add("task packing", rows.task_packing);
    dcn_sum += rows.baseline.dcn_share();
    traffic_sum += 1.0 - rows.traffic_packing.total() / base;
    task_sum += 1.0 - rows.task_packing.total() / base;
  }
  t.Print();
  std::printf(
      "\nAverages over the 5 data centers — DCN share: %.1f%% (paper: "
      "~20%%), traffic packing saves %.1f%% (paper: ~8%%), task packing "
      "saves %.1f%% (paper: ~53%%)\n",
      dcn_sum / 5.0 * 100.0, traffic_sum / 5.0 * 100.0,
      task_sum / 5.0 * 100.0);

  // --- cross-validation: closed form vs an instantiated topology -----------
  // The rows above are bin-packing arithmetic. Here a scaled-down VL2 is
  // actually built and the ElasticTree-style link/switch packer runs on it;
  // the relative savings should agree with the closed form.
  PrintBanner("Cross-check: instantiated VL2 (64 ToRs) vs closed form");
  const Resource cap{.cpu = 3200, .mem_gb = 64, .net_mbps = 10000};
  const Topology vl2 = Topology::Vl2(64, cap);
  const std::vector<SwitchPowerModel> models(
      static_cast<std::size_t>(vl2.num_levels()),
      SwitchPowerModel::FacebookWedge());

  auto network_watts = [&](double server_fill, double link_util) {
    std::vector<std::uint8_t> active(
        static_cast<std::size_t>(vl2.num_servers()), 0);
    const int on = static_cast<int>(vl2.num_servers() * server_fill);
    for (int s = 0; s < on; ++s) active[static_cast<std::size_t>(s)] = 1;
    TrafficEstimate traffic;
    traffic.node_uplink_mbps.assign(
        static_cast<std::size_t>(vl2.num_nodes()), 0.0);
    for (int i = 0; i < vl2.num_nodes(); ++i) {
      const auto& node = vl2.node(NodeId{i});
      if (node.uplink_capacity_mbps > 0.0 && node.level >= 1) {
        traffic.node_uplink_mbps[static_cast<std::size_t>(i)] =
            link_util * node.uplink_capacity_mbps;
      }
    }
    return PackTraffic(vl2, active, traffic, models);
  };

  Table x({"configuration", "active switches", "network kW",
           "vs all-on"});
  const double all_on = vl2.num_switches() * models[1].Power(1.0) / 1000.0;
  x.AddRow({"all switches on", Table::Int(vl2.num_switches()),
            Table::Num(all_on, 1), Table::Pct(0.0)});
  const auto baseline = network_watts(1.0, 0.10);
  x.AddRow({"baseline (10% links)",
            Table::Int(baseline.total_active_switches),
            Table::Num(baseline.watts / 1000.0, 1),
            Table::Pct(1.0 - baseline.watts / 1000.0 / all_on)});
  const auto packed = network_watts(0.25, 0.10);
  x.AddRow({"after task packing (25% servers)",
            Table::Int(packed.total_active_switches),
            Table::Num(packed.watts / 1000.0, 1),
            Table::Pct(1.0 - packed.watts / 1000.0 / all_on)});
  x.Print();
  std::printf(
      "→ the executable packer reproduces the closed form: consolidating "
      "traffic alone trims the fabric, consolidating *servers* lets whole "
      "racks and pods power off.\n");
  return 0;
}
