// Fig. 12 of the paper: the testbed micro-benchmarks that calibrate the
// large-scale simulation's resource demands.
//  (a) Apache Solr CPU utilization vs request rate (≤ 120 RPS, the trace's
//      max connections per ISN); memory pinned at 12 GB.
//  (b) Hadoop slave CPU utilization vs generated network traffic on the
//      Facebook job trace — a scatter: several CPU values per traffic rate.
#include <cstdio>

#include "common/rng.h"
#include "common/table.h"
#include "workload/calibration.h"

int main() {
  using namespace gl;

  PrintBanner("Fig 12(a): Solr CPU vs request rate (memory constant 12 GB)");
  Table solr({"RPS", "CPU (%)", "memory (GB)"});
  for (int rps = 0; rps <= 120; rps += 10) {
    solr.AddRow({Table::Int(rps), Table::Num(SolrCpuForRps(rps), 1),
                 Table::Num(kSolrIndexMemoryGb, 0)});
  }
  solr.Print();

  PrintBanner("Fig 12(b): Hadoop CPU vs traffic (scatter, 5 samples/rate)");
  Rng rng(58);  // the Facebook trace [58]
  Table hadoop({"traffic Mbps", "trend CPU%", "s1", "s2", "s3", "s4", "s5"});
  for (int mbps = 50; mbps <= 400; mbps += 50) {
    std::vector<std::string> row{Table::Int(mbps),
                                 Table::Num(HadoopCpuTrend(mbps), 1)};
    for (int s = 0; s < 5; ++s) {
      row.push_back(Table::Num(HadoopCpuForTrafficMbps(mbps, rng), 1));
    }
    hadoop.AddRow(row);
  }
  hadoop.Print();
  std::printf(
      "\nIn the Fig 13 simulation, a random sample (column s1..s5 style) is "
      "drawn for each background vertex's traffic rate.\n");
  return 0;
}
