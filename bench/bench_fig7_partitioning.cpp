// Fig. 7 of the paper: real partitioning results.
//  (a) 224 Memcached containers of the Twitter content caching workload,
//      partitioned by the recursive min-cut algorithm; each partition maps
//      to one server.
//  (b) the 100-vertex snapshot of the Microsoft search trace graph, split
//      into 5 partitions.
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/table.h"
#include "core/goldilocks.h"
#include "workload/msr_trace.h"
#include "workload/scenarios.h"

int main() {
  using namespace gl;

  PrintBanner("Fig 7(a): partitioning 224 Twitter caching containers");
  TwitterScenarioOptions opts;
  opts.num_containers = 224;
  const auto scenario = MakeTwitterCachingScenario(opts);
  const auto demands = scenario->DemandsAt(30);
  const auto active = scenario->ActiveAt(30);
  const Topology topo =
      Topology::LeafSpine(14, 2, 2,
                          Resource{.cpu = 3200, .mem_gb = 64,
                                   .net_mbps = 1000},
                          1000.0);
  GoldilocksScheduler scheduler;
  SchedulerInput input;
  input.workload = &scenario->workload();
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  const Placement p = scheduler.Place(input);

  std::map<int, int> group_sizes;
  for (const int g : scheduler.last_grouping()) {
    if (g >= 0) ++group_sizes[g];
  }
  std::printf("%d containers → %zu partitions (cells of Fig 7a)\n",
              scenario->workload().size(), group_sizes.size());
  Table ta({"partition", "containers", "server"});
  for (const auto& [g, size] : group_sizes) {
    ServerId server = ServerId::invalid();
    for (std::size_t c = 0; c < scheduler.last_grouping().size(); ++c) {
      if (scheduler.last_grouping()[c] == g) {
        server = p.server_of[c];
        break;
      }
    }
    ta.AddRow({Table::Int(g), Table::Int(size), Table::Int(server.value())});
  }
  ta.Print();

  // Partition quality: how much communication stays inside partitions.
  double internal = 0.0, total = 0.0;
  for (const auto& e : scenario->workload().edges) {
    total += e.flows;
    if (scheduler.last_grouping()[static_cast<std::size_t>(e.a.value())] ==
        scheduler.last_grouping()[static_cast<std::size_t>(e.b.value())]) {
      internal += e.flows;
    }
  }
  std::printf("Intra-partition communication: %.1f%% of all flows\n",
              100.0 * internal / total);

  PrintBanner("Fig 7(b): 100-vertex Microsoft-trace snapshot, 5 partitions");
  Rng rng(19);
  MsrTraceOptions mopts;
  mopts.num_vertices = 1000;
  const auto trace = GenerateMsrSearchTrace(mopts, rng);
  // Snapshot: first 100 vertices, induced subgraph.
  Graph g;
  std::vector<VertexIndex> map(1000, -1);
  for (int v = 0; v < 100; ++v) {
    const auto& c = trace.workload.containers[static_cast<std::size_t>(v)];
    map[static_cast<std::size_t>(v)] = g.AddVertex(c.demand, 1.0);
  }
  int kept_edges = 0;
  for (const auto& e : trace.workload.edges) {
    if (e.a.value() < 100 && e.b.value() < 100) {
      g.AddEdge(map[static_cast<std::size_t>(e.a.value())],
                map[static_cast<std::size_t>(e.b.value())], e.flows);
      ++kept_edges;
    }
  }
  const auto kway = KWayPartition(g, 5, {});
  std::vector<int> sizes(5, 0);
  for (const int gi : kway.group_of) ++sizes[static_cast<std::size_t>(gi)];
  Table tb({"partition", "vertices"});
  for (int i = 0; i < 5; ++i) {
    tb.AddRow({Table::Int(i), Table::Int(sizes[static_cast<std::size_t>(i)])});
  }
  tb.Print();
  std::printf(
      "Snapshot: 100 vertices, %d edges; min-cut across 5 partitions: %.0f "
      "flow weight (%.1f%% of the snapshot total %.0f)\n",
      kept_edges, kway.cut_weight,
      100.0 * kway.cut_weight / std::max(1.0, g.total_positive_edge_weight()),
      g.total_positive_edge_weight());
  return 0;
}
