// Ablations of the design choices DESIGN.md calls out:
//   1. PEE packing ceiling sweep (60/70/80/95%) — power vs TCT trade-off;
//   2. locality grouping on/off at identical packing — isolates the TCT
//      benefit of min-cut grouping;
//   3. network gating on/off — the traffic-side share of the savings;
//   4. repartition interval — migration churn vs partition freshness.
#include "bench_common.h"
#include "schedulers/e_pvm.h"
#include "schedulers/random_scheduler.h"

int main() {
  using namespace gl;
  using namespace gl::bench;

  const Topology topo = Topology::Testbed16();
  const auto scenario = MakeTwitterCachingScenario();

  PrintBanner("Ablation 1: PEE ceiling sweep (Goldilocks)");
  {
    ExperimentRunner runner(*scenario, topo);
    Table t({"ceiling", "servers", "power W", "TCT ms", "p99 ms",
             "SLA viol"});
    for (const double pee : {0.60, 0.70, 0.80, 0.95}) {
      GoldilocksOptions opts;
      opts.pee_utilization = pee;
      GoldilocksScheduler s(opts);
      const auto m = runner.Run(s).Average();
      t.AddRow({Table::Pct(pee, 0), Table::Int(m.active_servers),
                Table::Num(m.total_watts, 0), Table::Num(m.mean_tct_ms, 2),
                Table::Num(m.p99_tct_ms, 2),
                Table::Pct(m.sla_violation_rate)});
    }
    t.Print();
    std::printf("→ 70%% is the sweet spot: below it power rises (more\n"
                "  servers), above it latency and SLA violations rise.\n");
  }

  PrintBanner("Ablation 2: locality grouping on/off (identical packing)");
  {
    ExperimentRunner runner(*scenario, topo);
    Table t({"variant", "servers", "power W", "TCT ms"});
    for (const bool locality : {true, false}) {
      GoldilocksOptions opts;
      opts.locality_order = locality;
      GoldilocksScheduler s(opts);
      const auto m = runner.Run(s).Average();
      t.AddRow({locality ? "min-cut locality" : "shuffled groups",
                Table::Int(m.active_servers), Table::Num(m.total_watts, 0),
                Table::Num(m.mean_tct_ms, 2)});
    }
    // A fully random placement as the no-intelligence floor.
    RandomScheduler r(1234, 0.70);
    const auto m = runner.Run(r).Average();
    t.AddRow({"random placement", Table::Int(m.active_servers),
              Table::Num(m.total_watts, 0), Table::Num(m.mean_tct_ms, 2)});
    t.Print();
  }

  PrintBanner("Ablation 3: network gating on/off (Goldilocks)");
  {
    Table t({"gating", "network W", "total W"});
    for (const bool gate : {true, false}) {
      RunnerOptions opts;
      opts.gating.gate_idle_switches = gate;
      ExperimentRunner runner(*scenario, topo, opts);
      GoldilocksScheduler s;
      const auto m = runner.Run(s).Average();
      t.AddRow({gate ? "on" : "off", Table::Num(m.network_watts, 0),
                Table::Num(m.total_watts, 0)});
    }
    t.Print();
    std::printf("→ switch gating is the smaller lever, as the paper's\n"
                "  Fig 3 analysis predicts (task packing ≫ traffic packing).\n");
  }

  PrintBanner("Ablation 4: repartition interval (migration churn)");
  {
    ExperimentRunner runner(*scenario, topo);
    Table t({"interval (epochs)", "migr/epoch", "TCT ms", "power W"});
    for (const int interval : {1, 5, 15, 60}) {
      GoldilocksOptions opts;
      opts.repartition_interval = interval;
      GoldilocksScheduler s(opts);
      const auto m = runner.Run(s).Average();
      t.AddRow({Table::Int(interval), Table::Int(m.migrations),
                Table::Num(m.mean_tct_ms, 2), Table::Num(m.total_watts, 0)});
    }
    t.Print();
  }

  PrintBanner("Ablation 5: oracle vs estimated demands (Goldilocks)");
  {
    // Deployed schedulers see EWMA predictions from past measurements, not
    // the oracle; imperfect prediction costs headroom or latency.
    Table t({"demand source", "servers", "power W", "TCT ms", "p99 ms",
             "SLA viol", "unplaced"});
    for (const bool estimated : {false, true}) {
      RunnerOptions opts;
      opts.use_estimated_demands = estimated;
      ExperimentRunner runner(*scenario, topo, opts);
      GoldilocksScheduler s;
      const auto m = runner.Run(s).Average();
      t.AddRow({estimated ? "EWMA + 1 sigma" : "oracle",
                Table::Int(m.active_servers), Table::Num(m.total_watts, 0),
                Table::Num(m.mean_tct_ms, 2), Table::Num(m.p99_tct_ms, 2),
                Table::Pct(m.sla_violation_rate),
                Table::Int(m.unplaced_containers)});
    }
    t.Print();
  }

  PrintBanner("Ablation 6: E-PVM scoring rule (paper text vs Amir et al.)");
  {
    ExperimentRunner runner(*scenario, topo);
    Table t({"rule", "servers", "power W", "TCT ms"});
    {
      EPvmScheduler s;  // least utilized (paper's description)
      const auto m = runner.Run(s).Average();
      t.AddRow({"least-utilized", Table::Int(m.active_servers),
                Table::Num(m.total_watts, 0), Table::Num(m.mean_tct_ms, 2)});
    }
    {
      EPvmScheduler s(1.0, EPvmMode::kOpportunityCost);
      const auto m = runner.Run(s).Average();
      t.AddRow({"opportunity-cost", Table::Int(m.active_servers),
                Table::Num(m.total_watts, 0), Table::Num(m.mean_tct_ms, 2)});
    }
    t.Print();
  }
  return 0;
}
