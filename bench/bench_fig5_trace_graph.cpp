// Fig. 5 of the paper: the Microsoft search trace container graph —
// 5488 vertices / ~128538 edges — and the distributions of vertex weights
// (CPU, memory, network) and edge weights (flow counts), normalized to the
// smallest value as in the paper's plot.
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/msr_trace.h"

int main() {
  using namespace gl;

  Rng rng(19);  // trace reference [19]
  const MsrTraceOptions opts;
  const auto trace = GenerateMsrSearchTrace(opts, rng);

  const double mean_degree =
      2.0 * static_cast<double>(trace.workload.edges.size()) /
      trace.workload.size();
  std::printf(
      "Graph: %d vertices, %zu edges (paper: 5488 / 128538), mean distinct "
      "connections per VM: %.1f (paper: 45)\n",
      trace.workload.size(), trace.workload.edges.size(), mean_degree);

  // Collect weights.
  std::vector<double> cpu, mem, net, edge_w;
  for (const auto& c : trace.workload.containers) {
    cpu.push_back(c.demand.cpu);
    mem.push_back(c.demand.mem_gb);
    net.push_back(c.demand.net_mbps);
  }
  for (const auto& e : trace.workload.edges) edge_w.push_back(e.flows);

  auto normalized_cdf_row = [](std::vector<double>& xs, double p) {
    const double lo = *std::min_element(xs.begin(), xs.end());
    return Percentile(xs, p) / lo;
  };

  PrintBanner("Fig 5(b): weight distributions (normalized to the smallest)");
  Table t({"percentile", "Vertex-CPU", "Vertex-Memory", "Vertex-Network",
           "Edge-flows"});
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    t.AddRow({Table::Num(p, 0), Table::Num(normalized_cdf_row(cpu, p), 2),
              Table::Num(normalized_cdf_row(mem, p), 2),
              Table::Num(normalized_cdf_row(net, p), 2),
              Table::Num(normalized_cdf_row(edge_w, p), 2)});
  }
  t.Print();
  std::printf(
      "\nAs in the paper: search vertices all hold the 12 GB in-memory "
      "index (Vertex-Memory ≈ flat at 1 for the search tier), while edge "
      "weights span orders of magnitude.\n");

  // 100-vertex snapshot (IP range 10.0.0.1–10.0.0.100 in the paper).
  PrintBanner("Fig 5(a): 100-vertex snapshot");
  int snapshot_edges = 0;
  double snapshot_w = 0.0;
  for (const auto& e : trace.workload.edges) {
    if (e.a.value() < 100 && e.b.value() < 100) {
      ++snapshot_edges;
      snapshot_w += e.flows;
    }
  }
  std::printf(
      "Vertices 0..99: %d intra-snapshot edges, total flow weight %.0f\n",
      snapshot_edges, snapshot_w);
  return 0;
}
