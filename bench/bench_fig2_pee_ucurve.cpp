// Fig. 2 of the paper: placing a fixed container load on a 1000-server
// cluster while sweeping the per-server packing level.
//  (a) fewer servers are needed as the packing level rises;
//  (b) total power forms a 'U' whose minimum sits at the Peak Energy
//      Efficiency utilization (70% for the Dell-2018 model) — packing to
//      100% wastes power AND headroom.
#include <cmath>
#include <cstdio>

#include "common/table.h"
#include "power/server_power.h"

int main() {
  using namespace gl;

  const ServerPowerModel server = ServerPowerModel::Dell2018();
  const int cluster = 1000;
  const double cluster_load = cluster * 0.30;  // aggregate demand

  PrintBanner("Fig 2: servers needed and total power vs per-server load");
  Table t({"pack-to load %", "active servers", "total power kW",
           "vs best", "headroom for bursts"});
  double best_kw = 1e18;
  struct Row {
    int load;
    double servers;
    double kw;
  };
  std::vector<Row> rows;
  for (int load = 30; load <= 100; load += 5) {
    const double u = load / 100.0;
    const double servers = std::ceil(cluster_load / u);
    const double kw = servers * server.Power(cluster_load / servers) / 1000.0;
    rows.push_back({load, servers, kw});
    best_kw = std::min(best_kw, kw);
  }
  int best_load = 0;
  for (const auto& r : rows) {
    if (r.kw == best_kw) best_load = r.load;
    t.AddRow({Table::Int(r.load), Table::Int(std::llround(r.servers)),
              Table::Num(r.kw, 1), Table::Pct(r.kw / best_kw - 1.0),
              Table::Pct(1.0 - r.load / 100.0, 0)});
  }
  t.Print();
  std::printf(
      "\n'U' curve minimum at %d%% per-server load (the PEE point is "
      "%.0f%%); packing to 100%% costs %.1f%% more power and leaves no "
      "headroom.\n",
      best_load, server.PeakEfficiencyUtilization() * 100.0,
      (rows.back().kw / best_kw - 1.0) * 100.0);
  return 0;
}
