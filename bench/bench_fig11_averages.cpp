// Fig. 11 of the paper: cross-pattern averages.
//  (a) power saving relative to E-PVM, per policy, for both trace patterns
//      (paper: Goldilocks 22.7% on Wikipedia, 11.7% on Azure; best
//      alternative Borg 21% / RC-Informed 8.9%);
//  (b) average task completion time (paper: Goldilocks 3.67 ms / 4.9 ms);
//  (c) energy per request (paper: Goldilocks ≈ 1/3 of the best
//      alternative).
#include "bench_common.h"

int main() {
  using namespace gl;
  using namespace gl::bench;

  const Topology topo = Topology::Testbed16();

  const auto wiki = MakeTwitterCachingScenario();
  const auto wiki_runs = RunAllPolicies(*wiki, topo);

  const auto azure = MakeAzureMixScenario();
  const auto azure_runs = RunAllPolicies(*azure, topo);

  const double wiki_epvm = wiki_runs.front().result.Average().total_watts;
  const double azure_epvm = azure_runs.front().result.Average().total_watts;

  PrintBanner("Fig 11(a): average power saving vs E-PVM");
  Table a({"policy", "Wikipedia pattern", "Azure pattern"});
  for (std::size_t i = 1; i < wiki_runs.size(); ++i) {  // skip E-PVM itself
    a.AddRow({wiki_runs[i].name,
              Table::Pct(1.0 - wiki_runs[i].result.Average().total_watts /
                                   wiki_epvm),
              Table::Pct(1.0 - azure_runs[i].result.Average().total_watts /
                                   azure_epvm)});
  }
  a.Print();

  PrintBanner("Fig 11(b): average task completion time (ms)");
  Table b({"policy", "Wikipedia pattern", "Azure pattern"});
  for (std::size_t i = 0; i < wiki_runs.size(); ++i) {
    b.AddRow({wiki_runs[i].name,
              Table::Num(wiki_runs[i].result.Average().mean_tct_ms, 2),
              Table::Num(azure_runs[i].result.Average().mean_tct_ms, 2)});
  }
  b.Print();

  PrintBanner("Fig 11(c): average energy per request (J)");
  Table c({"policy", "Wikipedia pattern", "Azure pattern"});
  for (std::size_t i = 0; i < wiki_runs.size(); ++i) {
    c.AddRow(
        {wiki_runs[i].name,
         Table::Num(wiki_runs[i].result.Average().energy_per_request_j, 4),
         Table::Num(azure_runs[i].result.Average().energy_per_request_j,
                    4)});
  }
  c.Print();

  // Headline ratios, as the paper reports them.
  const auto& gw = wiki_runs.back().result.Average();
  double best_alt_tct = 1e18, best_alt_epr = 1e18;
  for (std::size_t i = 0; i + 1 < wiki_runs.size(); ++i) {
    best_alt_tct =
        std::min(best_alt_tct, wiki_runs[i].result.Average().mean_tct_ms);
    best_alt_epr = std::min(
        best_alt_epr, wiki_runs[i].result.Average().energy_per_request_j);
  }
  std::printf(
      "\nWikipedia pattern headline: best alternative TCT is %.2fx "
      "Goldilocks; best alternative energy/request is %.2fx Goldilocks\n",
      best_alt_tct / gw.mean_tct_ms, best_alt_epr / gw.energy_per_request_j);
  return 0;
}
