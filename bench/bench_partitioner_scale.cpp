// Partitioner scalability microbenchmarks (google-benchmark).
//
// The paper reports METIS partitioning a 1M-vertex graph in 285 s and
// argues that epoch lengths can therefore be short. These benchmarks track
// our multilevel partitioner's cost across graph sizes, plus the unit
// operations placement relies on (bisection, k-way, recursive-to-fit).
//
//   bench_partitioner_scale [--json out.json] [--trace=PATH]
//                           [google-benchmark flags]
//
// --json switches to the thread-scaling sweep: RecursivePartition over the
// workload-like graph at threads 1/2/4/8, one record per configuration with
// timing (wall_ms/median_wall_ms) plus parallel-efficiency telemetry
// (parallel_efficiency, critical_path_ms, peak_bytes — see EXPERIMENTS.md,
// "Machine-readable output"). Results are bit-identical across widths
// (DESIGN.md §9); only the timings vary.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "graph/partitioner.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace gl {
namespace {

Graph MakeWorkloadLikeGraph(int n, std::uint64_t seed) {
  // Clustered graph shaped like a container graph: services of ~8 with
  // heavy intra edges, sparse light inter-service edges.
  Rng rng(seed);
  Graph g;
  for (int i = 0; i < n; ++i) {
    g.AddVertex(Resource{.cpu = rng.Uniform(20, 60), .mem_gb = 4,
                         .net_mbps = rng.Uniform(5, 50)},
                1.0);
  }
  for (int s = 0; s + 8 <= n; s += 8) {
    for (int i = 1; i < 8; ++i) {
      g.AddEdge(s, s + i, rng.Uniform(100, 5000));
    }
  }
  const int inter = n / 2;
  for (int e = 0; e < inter; ++e) {
    const auto a = static_cast<VertexIndex>(rng.NextBelow(n));
    const auto b = static_cast<VertexIndex>(rng.NextBelow(n));
    if (a != b) g.AddEdge(a, b, rng.Uniform(1, 50));
  }
  return g;
}

void BM_Bisect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = MakeWorkloadLikeGraph(n, 42);
  for (auto _ : state) {
    auto b = Bisect(g, {});
    benchmark::DoNotOptimize(b.cut_weight);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Bisect)->Arg(1000)->Arg(10000)->Arg(50000)->Complexity();

void BM_RecursivePartitionToServers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = MakeWorkloadLikeGraph(n, 7);
  const Resource ceiling{.cpu = 2240, .mem_gb = 57, .net_mbps = 700};
  for (auto _ : state) {
    auto r = RecursivePartition(
        g, [&](const Resource& d, int) { return d.FitsIn(ceiling); }, {});
    benchmark::DoNotOptimize(r.num_groups);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RecursivePartitionToServers)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Complexity();

void BM_KWayPartition(benchmark::State& state) {
  const Graph g = MakeWorkloadLikeGraph(5000, 3);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = KWayPartition(g, k, {});
    benchmark::DoNotOptimize(r.cut_weight);
  }
}
BENCHMARK(BM_KWayPartition)->Arg(2)->Arg(8)->Arg(32);

void BM_CoarseningOnly(benchmark::State& state) {
  // Proxy for per-epoch incremental cost: one bisection on an already
  // service-clustered graph at testbed scale.
  const Graph g = MakeWorkloadLikeGraph(224, 11);
  for (auto _ : state) {
    auto b = Bisect(g, {});
    benchmark::DoNotOptimize(b.side.data());
  }
}
BENCHMARK(BM_CoarseningOnly);

// Last value of an informational gauge, or `fallback` when never set.
double InfoGauge(const char* name, double fallback) {
  for (const auto& gv : obs::MetricsRegistry::Global().SnapshotGauges(
           obs::MetricKind::kInformational)) {
    if (gv.name == name) return gv.value;
  }
  return fallback;
}

// The --json sweep: same partition at every thread count, `repeat` timed
// runs per configuration, median + min reported (the committed perf
// baseline in BENCH_partitioner.json compares medians; see
// tools/perf_check.py). n=50000 is the "largest configuration" the perf
// trajectory tracks; it runs at threads 1 and 8 only to bound sweep time.
//
// After the timed repeats, each configuration gets one extra *untimed*
// instrumented run under an active Trace: it yields the critical-path length
// (obs/profile.h), and the pool-efficiency / scratch-peak gauges the
// partitioner publishes. Keeping tracing out of the timed loop means the
// medians stay comparable with pre-telemetry baselines. --trace=PATH
// additionally writes the Chrome trace of the largest parallel
// configuration for `gl_report profile` / `gl_report flame`.
bool RunThreadScalingSweep(const char* json_path, int repeat,
                           const char* trace_path) {
  const Resource ceiling{.cpu = 2240, .mem_gb = 57, .net_mbps = 700};
  const auto fits = [&](const Resource& d, int) { return d.FitsIn(ceiling); };
  std::vector<bench::ScaleRecord> records;
  for (const int n : {2000, 10000, 50000}) {
    const Graph g = MakeWorkloadLikeGraph(n, 7);
    const std::vector<int> widths =
        n >= 50000 ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};
    for (const int threads : widths) {
      PartitionOptions opts;
      opts.threads = threads;
      std::vector<double> samples;
      samples.reserve(static_cast<std::size_t>(repeat));
      int servers = 0;
      double cut_weight = 0.0;
      for (int rep = 0; rep < repeat; ++rep) {
        const obs::WallTimer timer;  // wall timing only — never a seed
        const auto r = RecursivePartition(g, fits, opts);
        samples.push_back(timer.ElapsedMs());
        servers = r.num_groups;
        cut_weight = r.cut_weight;
      }
      const double best_ms = *std::min_element(samples.begin(), samples.end());
      const double median_ms = bench::MedianOf(samples);
      bench::ScaleRecord rec{"recursive_partition/n=" + std::to_string(n),
                             threads, best_ms, n, servers, median_ms, repeat};
      rec.cut_weight = cut_weight;
      {
        obs::Trace trace;
        trace.Activate();
        const auto r = RecursivePartition(g, fits, opts);
        trace.Deactivate();
        benchmark::DoNotOptimize(r.num_groups);
        const auto cp = obs::ComputeCriticalPath(
            trace.Events(),
            threads > 1 ? "partition.parallel" : "partition.recursive");
        rec.critical_path_ms = cp.path_ms;
        rec.serial_share = cp.path_ms > 0.0 ? cp.serial_ms / cp.path_ms : 0.0;
        rec.parallel_efficiency =
            threads > 1
                ? InfoGauge("partition.pool.parallel_efficiency", 1.0)
                : 1.0;
        rec.peak_bytes = static_cast<std::uint64_t>(
            InfoGauge("partition.scratch_peak_bytes", 0.0));
        if (trace_path != nullptr && n >= 50000 && threads > 1) {
          if (!trace.WriteChromeJson(trace_path)) return false;
          std::printf("wrote Chrome trace (n=%d threads=%d) to %s\n", n,
                      threads, trace_path);
        }
      }
      records.push_back(rec);
      std::printf("%-28s threads=%d  median %8.2f ms  min %8.2f ms  %d groups"
                  "  cut %.0f  eff %.2f  cp %7.2f ms  serial %.2f"
                  "  peak %zu KiB\n",
                  rec.name.c_str(), threads, median_ms, best_ms, servers,
                  rec.cut_weight, rec.parallel_efficiency,
                  rec.critical_path_ms, rec.serial_share,
                  static_cast<std::size_t>(rec.peak_bytes / 1024));
    }
  }
  if (!bench::WriteScaleJson(json_path, records)) return false;
  std::printf("wrote %zu records to %s\n", records.size(), json_path);
  return true;
}

}  // namespace
}  // namespace gl

int main(int argc, char** argv) {
  if (const char* json_path = gl::bench::JsonPathFromArgs(argc, argv)) {
    const int repeat = gl::bench::RepeatFromArgs(argc, argv);
    const char* trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
    }
    return gl::RunThreadScalingSweep(json_path, repeat, trace_path) ? 0 : 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
