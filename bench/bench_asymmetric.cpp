// Sec. IV evaluation: provisioning on asymmetric topologies.
//
// The paper proves the algorithm but evaluates only on the symmetric
// testbed; this bench exercises the Virtual Cluster placer under the two
// asymmetries Sec. IV names — link failures and heterogeneous servers — and
// quantifies what the bandwidth-reservation machinery (Eq. 4/5) buys over
// the symmetric-assumption placer on a degraded fabric.
#include <cstdio>

#include "bench_common.h"
#include "core/virtual_cluster.h"
#include "netsim/traffic.h"
#include "sim/latency.h"

namespace {

using namespace gl;

struct Outcome {
  int placed = 0;
  int servers = 0;
  double mean_tct = 0.0;
  double fabric_peak_util = 0.0;
};

Outcome Evaluate(GoldilocksScheduler& sched, const Topology& topo,
                 const Workload& workload,
                 const std::vector<Resource>& demands,
                 const std::vector<std::uint8_t>& active) {
  SchedulerInput input;
  input.workload = &workload;
  input.demands = demands;
  input.active = active;
  input.topology = &topo;
  const Placement p = sched.Place(input);

  Outcome o;
  o.placed = p.num_placed();
  o.servers = p.NumActiveServers();
  const auto traffic = EstimateTraffic(workload, p, demands, active, topo);
  const LatencyModel latency(topo);
  o.mean_tct = latency.ComputeTct(workload, p, demands, active, traffic)
                   .mean_ms;
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const auto& node = topo.node(NodeId{i});
    if (node.level >= 1 && node.uplink_capacity_mbps > 0.0) {
      o.fabric_peak_util =
          std::max(o.fabric_peak_util,
                   traffic.UplinkUtilization(topo, NodeId{i}));
    }
  }
  return o;
}

}  // namespace

int main() {
  using namespace gl;

  const Resource cap{.cpu = 3200, .mem_gb = 64, .net_mbps = 1000};
  const auto scenario = MakeTwitterCachingScenario();
  const auto demands = scenario->DemandsAt(30);
  const auto active = scenario->ActiveAt(30);

  PrintBanner("Link-failure sweep: degrade one pod's uplinks (fat-tree(4))");
  Table t({"pod uplink capacity", "placer", "placed", "servers", "TCT ms",
           "peak fabric util"});
  for (const double factor : {1.0, 0.5, 0.25, 0.1}) {
    for (const bool vc : {false, true}) {
      Topology topo = Topology::FatTree(4, cap, 1000.0);
      topo.DegradeUplink(topo.NodesAtLevel(2)[0], factor);
      GoldilocksOptions opts;
      opts.use_virtual_clusters = vc;
      GoldilocksScheduler sched(opts);
      const auto o =
          Evaluate(sched, topo, scenario->workload(), demands, active);
      t.AddRow({Table::Pct(factor, 0),
                vc ? "Virtual Cluster (Sec IV)" : "symmetric (Sec III)",
                Table::Int(o.placed), Table::Int(o.servers),
                Table::Num(o.mean_tct, 2), Table::Pct(o.fabric_peak_util)});
    }
  }
  t.Print();
  std::printf(
      "→ the symmetric placer is blind to the failure (it never checks "
      "uplinks); on this colocation-friendly workload it gets away with it. "
      "The VC placer *accounts* for the shrinking pod: its reservations "
      "approach the degraded capacity (peak util column) and it spills "
      "groups to healthy pods before the limit, exactly the Eq. 4/5 "
      "behaviour.\n");

  PrintBanner("Heterogeneity sweep: legacy half-size servers in the fleet");
  Table h({"legacy share", "placer", "placed", "servers", "TCT ms"});
  for (const double share : {0.0, 0.25, 0.5}) {
    for (const bool vc : {false, true}) {
      Topology topo = Topology::FatTree(4, cap, 1000.0);
      const int legacy = static_cast<int>(topo.num_servers() * share);
      for (int s = 0; s < legacy; ++s) {
        topo.set_server_capacity(ServerId{s * 2 % topo.num_servers()},
                                 cap * 0.5);
      }
      GoldilocksOptions opts;
      opts.use_virtual_clusters = vc;
      GoldilocksScheduler sched(opts);
      const auto o =
          Evaluate(sched, topo, scenario->workload(), demands, active);
      h.AddRow({Table::Pct(share, 0),
                vc ? "Virtual Cluster (Sec IV)" : "symmetric (Sec III)",
                Table::Int(o.placed), Table::Int(o.servers),
                Table::Num(o.mean_tct, 2)});
    }
  }
  h.Print();
  std::printf(
      "→ with heterogeneous servers the per-server fit checks of the VC "
      "placer use each machine's own capacity; both paths place everything, "
      "the VC path spreads onto more (smaller) machines as legacy share "
      "grows.\n");
  return 0;
}
