// Shared helpers for the Fig. 9 / 10 / 11 / 13 benches: run every policy of
// the paper over a scenario and print the paper's time series and averages.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "common/json_writer.h"
#include "common/table.h"
#include "core/goldilocks.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/rc_informed.h"
#include "sim/simulator.h"
#include "workload/scenarios.h"

namespace gl::bench {

struct PolicyRun {
  std::string name;
  ExperimentResult result;  // result.wall_ms carries the per-policy timing
};

// Runs the paper's five policies over the scenario. With opts.threads > 1
// the policies are evaluated concurrently (ExperimentRunner::RunMany);
// results — state hashes included — are identical at every thread count.
inline std::vector<PolicyRun> RunAllPolicies(
    const Scenario& scenario, const Topology& topo,
    const RunnerOptions& opts = {}, int goldilocks_repartition_interval = 1) {
  ExperimentRunner runner(scenario, topo, opts);
  GoldilocksOptions gopts;
  gopts.repartition_interval = goldilocks_repartition_interval;
  // One knob for both fan-outs: the policies run concurrently and
  // Goldilocks' recursive bipartitioning fans out internally.
  gopts.partition.threads = opts.threads;

  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<EPvmScheduler>());
  schedulers.push_back(std::make_unique<MppScheduler>());
  schedulers.push_back(std::make_unique<BorgScheduler>());
  schedulers.push_back(std::make_unique<RcInformedScheduler>());
  schedulers.push_back(std::make_unique<GoldilocksScheduler>(gopts));

  std::vector<Scheduler*> ptrs;
  ptrs.reserve(schedulers.size());
  for (const auto& s : schedulers) ptrs.push_back(s.get());
  auto results = runner.RunMany(ptrs);

  std::vector<PolicyRun> runs;
  runs.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    runs.push_back({schedulers[i]->name(), std::move(results[i])});
  }
  return runs;
}

inline void PrintTimeSeries(const std::vector<PolicyRun>& runs, int stride,
                            const char* time_unit) {
  Table t({time_unit, "policy", "active servers", "power W", "TCT ms",
           "J/req"});
  const int epochs = static_cast<int>(runs.front().result.epochs.size());
  for (int e = 0; e < epochs; e += stride) {
    for (const auto& r : runs) {
      const auto& m = r.result.epochs[static_cast<std::size_t>(e)];
      t.AddRow({Table::Int(e), r.name, Table::Int(m.active_servers),
                Table::Num(m.total_watts, 0), Table::Num(m.mean_tct_ms, 2),
                Table::Num(m.energy_per_request_j, 4)});
    }
  }
  t.Print();
}

// One row of the machine-readable bench output (--json): what ran, how wide
// the fan-out was, how long it took, and the resulting problem/solution
// sizes (see EXPERIMENTS.md, "Machine-readable output"). wall_ms is the
// minimum over the repeats; median_wall_ms is the noise-resistant number
// perf tracking compares (tools/perf_check.py).
struct ScaleRecord {
  std::string name;
  int threads = 1;
  double wall_ms = 0.0;
  int containers = 0;
  int servers = 0;
  double median_wall_ms = 0.0;
  int repeats = 1;
  // Parallel-efficiency telemetry from one extra instrumented (untimed) run
  // per configuration — informational, never compared against a hard
  // threshold (tools/perf_check.py carries them through when present in
  // both baseline and candidate and ignores them otherwise).
  double parallel_efficiency = 1.0;  // pool busy / (workers × batch wall)
  double critical_path_ms = 0.0;     // longest non-overlappable span chain
  std::uint64_t peak_bytes = 0;      // scratch-arena high-water mark
  // Width-1 share of the critical path (serial_ms / path_ms): the Amdahl
  // wall. Gated hard by tools/perf_check.py --serial-share-max at the
  // largest parallel configuration.
  double serial_share = 0.0;
  // Solution quality guard: the recursive partition's total cut weight.
  // Thread-count invariant (DESIGN.md §9), so any drift is algorithmic.
  double cut_weight = 0.0;
};

// Median of the samples (averages the middle pair for even counts).
// Sorts a copy; sample vectors here are tiny.
inline double MedianOf(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

// Writes the records as a JSON array via the shared writer (one escaping
// implementation for benches, RunLogger and the trace exporter). Returns
// false (with a message on stderr) if the file cannot be opened.
inline bool WriteScaleJson(const char* path,
                           const std::vector<ScaleRecord>& records) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return false;
  }
  std::string out;
  JsonWriter w(&out);
  w.BeginArray();
  for (const auto& r : records) {
    w.BeginObject();
    w.Key("name");
    w.String(r.name);
    w.Key("threads");
    w.Int(r.threads);
    w.Key("wall_ms");
    w.Double(r.wall_ms);
    w.Key("median_wall_ms");
    w.Double(r.median_wall_ms);
    w.Key("repeats");
    w.Int(r.repeats);
    w.Key("containers");
    w.Int(r.containers);
    w.Key("servers");
    w.Int(r.servers);
    // Telemetry keys append after the original layout so older consumers
    // (and the committed perf baselines) keep parsing by prefix.
    w.Key("parallel_efficiency");
    w.Double(r.parallel_efficiency);
    w.Key("critical_path_ms");
    w.Double(r.critical_path_ms);
    w.Key("peak_bytes");
    w.UInt(r.peak_bytes);
    w.Key("serial_share");
    w.Double(r.serial_share);
    w.Key("cut_weight");
    w.Double(r.cut_weight);
    w.EndObject();
  }
  w.EndArray();
  out.push_back('\n');
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

// Parses "--json out.json" / "--json=out.json" from argv; nullptr if absent.
inline const char* JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  }
  return nullptr;
}

// Parses "--repeat=N" / "--repeat N" from argv; `fallback` (default 5) if
// absent. Benches run each timed configuration N times and report median +
// min, so one background hiccup cannot shift the perf trajectory.
inline int RepeatFromArgs(int argc, char** argv, int fallback = 5) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      return std::max(1, std::atoi(argv[i + 1]));
    }
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      return std::max(1, std::atoi(argv[i] + 9));
    }
  }
  return fallback;
}

// Parses "--threads=N" / "--threads N" from argv; 1 if absent.
inline int ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
  }
  return 1;
}

inline void PrintAverages(const std::vector<PolicyRun>& runs) {
  const double epvm_watts = runs.front().result.Average().total_watts;
  Table t({"policy", "servers", "power W", "saving vs E-PVM", "TCT ms",
           "p99 ms", "J/req", "SLA viol", "migr/epoch"});
  for (const auto& r : runs) {
    const auto m = r.result.Average();
    t.AddRow({r.name, Table::Int(m.active_servers),
              Table::Num(m.total_watts, 0),
              Table::Pct(1.0 - m.total_watts / epvm_watts),
              Table::Num(m.mean_tct_ms, 2), Table::Num(m.p99_tct_ms, 2),
              Table::Num(m.energy_per_request_j, 4),
              Table::Pct(m.sla_violation_rate), Table::Int(m.migrations)});
  }
  t.Print();
}

}  // namespace gl::bench
