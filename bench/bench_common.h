// Shared helpers for the Fig. 9 / 10 / 11 / 13 benches: run every policy of
// the paper over a scenario and print the paper's time series and averages.
#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "common/table.h"
#include "core/goldilocks.h"
#include "schedulers/borg.h"
#include "schedulers/e_pvm.h"
#include "schedulers/mpp.h"
#include "schedulers/rc_informed.h"
#include "sim/simulator.h"
#include "workload/scenarios.h"

namespace gl::bench {

struct PolicyRun {
  std::string name;
  ExperimentResult result;
};

inline std::vector<PolicyRun> RunAllPolicies(
    const Scenario& scenario, const Topology& topo,
    const RunnerOptions& opts = {}, int goldilocks_repartition_interval = 1) {
  ExperimentRunner runner(scenario, topo, opts);
  std::vector<PolicyRun> runs;
  {
    EPvmScheduler s;
    runs.push_back({s.name(), runner.Run(s)});
  }
  {
    MppScheduler s;
    runs.push_back({s.name(), runner.Run(s)});
  }
  {
    BorgScheduler s;
    runs.push_back({s.name(), runner.Run(s)});
  }
  {
    RcInformedScheduler s;
    runs.push_back({s.name(), runner.Run(s)});
  }
  {
    GoldilocksOptions gopts;
    gopts.repartition_interval = goldilocks_repartition_interval;
    GoldilocksScheduler s(gopts);
    runs.push_back({s.name(), runner.Run(s)});
  }
  return runs;
}

inline void PrintTimeSeries(const std::vector<PolicyRun>& runs, int stride,
                            const char* time_unit) {
  Table t({time_unit, "policy", "active servers", "power W", "TCT ms",
           "J/req"});
  const int epochs = static_cast<int>(runs.front().result.epochs.size());
  for (int e = 0; e < epochs; e += stride) {
    for (const auto& r : runs) {
      const auto& m = r.result.epochs[static_cast<std::size_t>(e)];
      t.AddRow({Table::Int(e), r.name, Table::Int(m.active_servers),
                Table::Num(m.total_watts, 0), Table::Num(m.mean_tct_ms, 2),
                Table::Num(m.energy_per_request_j, 4)});
    }
  }
  t.Print();
}

inline void PrintAverages(const std::vector<PolicyRun>& runs) {
  const double epvm_watts = runs.front().result.Average().total_watts;
  Table t({"policy", "servers", "power W", "saving vs E-PVM", "TCT ms",
           "p99 ms", "J/req", "SLA viol", "migr/epoch"});
  for (const auto& r : runs) {
    const auto m = r.result.Average();
    t.AddRow({r.name, Table::Int(m.active_servers),
              Table::Num(m.total_watts, 0),
              Table::Pct(1.0 - m.total_watts / epvm_watts),
              Table::Num(m.mean_tct_ms, 2), Table::Num(m.p99_tct_ms, 2),
              Table::Num(m.energy_per_request_j, 4),
              Table::Pct(m.sla_violation_rate), Table::Int(m.migrations)});
  }
  t.Print();
}

}  // namespace gl::bench
