file(REMOVE_RECURSE
  "libgl_sim.a"
)
