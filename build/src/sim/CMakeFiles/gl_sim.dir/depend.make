# Empty dependencies file for gl_sim.
# This may be replaced when dependencies are built.
