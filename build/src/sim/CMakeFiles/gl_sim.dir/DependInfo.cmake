
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/estimator.cc" "src/sim/CMakeFiles/gl_sim.dir/estimator.cc.o" "gcc" "src/sim/CMakeFiles/gl_sim.dir/estimator.cc.o.d"
  "/root/repo/src/sim/failure.cc" "src/sim/CMakeFiles/gl_sim.dir/failure.cc.o" "gcc" "src/sim/CMakeFiles/gl_sim.dir/failure.cc.o.d"
  "/root/repo/src/sim/latency.cc" "src/sim/CMakeFiles/gl_sim.dir/latency.cc.o" "gcc" "src/sim/CMakeFiles/gl_sim.dir/latency.cc.o.d"
  "/root/repo/src/sim/migration.cc" "src/sim/CMakeFiles/gl_sim.dir/migration.cc.o" "gcc" "src/sim/CMakeFiles/gl_sim.dir/migration.cc.o.d"
  "/root/repo/src/sim/migration_planner.cc" "src/sim/CMakeFiles/gl_sim.dir/migration_planner.cc.o" "gcc" "src/sim/CMakeFiles/gl_sim.dir/migration_planner.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/gl_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/gl_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/gl_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/gl_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
