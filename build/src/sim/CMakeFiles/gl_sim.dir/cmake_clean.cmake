file(REMOVE_RECURSE
  "CMakeFiles/gl_sim.dir/estimator.cc.o"
  "CMakeFiles/gl_sim.dir/estimator.cc.o.d"
  "CMakeFiles/gl_sim.dir/failure.cc.o"
  "CMakeFiles/gl_sim.dir/failure.cc.o.d"
  "CMakeFiles/gl_sim.dir/latency.cc.o"
  "CMakeFiles/gl_sim.dir/latency.cc.o.d"
  "CMakeFiles/gl_sim.dir/migration.cc.o"
  "CMakeFiles/gl_sim.dir/migration.cc.o.d"
  "CMakeFiles/gl_sim.dir/migration_planner.cc.o"
  "CMakeFiles/gl_sim.dir/migration_planner.cc.o.d"
  "CMakeFiles/gl_sim.dir/simulator.cc.o"
  "CMakeFiles/gl_sim.dir/simulator.cc.o.d"
  "libgl_sim.a"
  "libgl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
