# Empty dependencies file for gl_graph.
# This may be replaced when dependencies are built.
