file(REMOVE_RECURSE
  "libgl_graph.a"
)
