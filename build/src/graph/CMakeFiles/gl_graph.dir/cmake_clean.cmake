file(REMOVE_RECURSE
  "CMakeFiles/gl_graph.dir/graph.cc.o"
  "CMakeFiles/gl_graph.dir/graph.cc.o.d"
  "CMakeFiles/gl_graph.dir/incremental.cc.o"
  "CMakeFiles/gl_graph.dir/incremental.cc.o.d"
  "CMakeFiles/gl_graph.dir/partitioner.cc.o"
  "CMakeFiles/gl_graph.dir/partitioner.cc.o.d"
  "libgl_graph.a"
  "libgl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
