# Empty dependencies file for gl_power.
# This may be replaced when dependencies are built.
