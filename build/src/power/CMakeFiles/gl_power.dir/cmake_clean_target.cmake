file(REMOVE_RECURSE
  "libgl_power.a"
)
