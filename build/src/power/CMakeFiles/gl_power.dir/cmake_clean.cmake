file(REMOVE_RECURSE
  "CMakeFiles/gl_power.dir/dc_power.cc.o"
  "CMakeFiles/gl_power.dir/dc_power.cc.o.d"
  "CMakeFiles/gl_power.dir/server_power.cc.o"
  "CMakeFiles/gl_power.dir/server_power.cc.o.d"
  "CMakeFiles/gl_power.dir/spec_population.cc.o"
  "CMakeFiles/gl_power.dir/spec_population.cc.o.d"
  "libgl_power.a"
  "libgl_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
