
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/dc_power.cc" "src/power/CMakeFiles/gl_power.dir/dc_power.cc.o" "gcc" "src/power/CMakeFiles/gl_power.dir/dc_power.cc.o.d"
  "/root/repo/src/power/server_power.cc" "src/power/CMakeFiles/gl_power.dir/server_power.cc.o" "gcc" "src/power/CMakeFiles/gl_power.dir/server_power.cc.o.d"
  "/root/repo/src/power/spec_population.cc" "src/power/CMakeFiles/gl_power.dir/spec_population.cc.o" "gcc" "src/power/CMakeFiles/gl_power.dir/spec_population.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gl_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
