file(REMOVE_RECURSE
  "libgl_common.a"
)
