file(REMOVE_RECURSE
  "CMakeFiles/gl_common.dir/rng.cc.o"
  "CMakeFiles/gl_common.dir/rng.cc.o.d"
  "CMakeFiles/gl_common.dir/stats.cc.o"
  "CMakeFiles/gl_common.dir/stats.cc.o.d"
  "CMakeFiles/gl_common.dir/table.cc.o"
  "CMakeFiles/gl_common.dir/table.cc.o.d"
  "libgl_common.a"
  "libgl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
