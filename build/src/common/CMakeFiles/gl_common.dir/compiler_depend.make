# Empty compiler generated dependencies file for gl_common.
# This may be replaced when dependencies are built.
