
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/calibration.cc" "src/workload/CMakeFiles/gl_workload.dir/calibration.cc.o" "gcc" "src/workload/CMakeFiles/gl_workload.dir/calibration.cc.o.d"
  "/root/repo/src/workload/container.cc" "src/workload/CMakeFiles/gl_workload.dir/container.cc.o" "gcc" "src/workload/CMakeFiles/gl_workload.dir/container.cc.o.d"
  "/root/repo/src/workload/msr_trace.cc" "src/workload/CMakeFiles/gl_workload.dir/msr_trace.cc.o" "gcc" "src/workload/CMakeFiles/gl_workload.dir/msr_trace.cc.o.d"
  "/root/repo/src/workload/scenarios.cc" "src/workload/CMakeFiles/gl_workload.dir/scenarios.cc.o" "gcc" "src/workload/CMakeFiles/gl_workload.dir/scenarios.cc.o.d"
  "/root/repo/src/workload/traces.cc" "src/workload/CMakeFiles/gl_workload.dir/traces.cc.o" "gcc" "src/workload/CMakeFiles/gl_workload.dir/traces.cc.o.d"
  "/root/repo/src/workload/workload_io.cc" "src/workload/CMakeFiles/gl_workload.dir/workload_io.cc.o" "gcc" "src/workload/CMakeFiles/gl_workload.dir/workload_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
