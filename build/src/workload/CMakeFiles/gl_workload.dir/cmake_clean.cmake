file(REMOVE_RECURSE
  "CMakeFiles/gl_workload.dir/calibration.cc.o"
  "CMakeFiles/gl_workload.dir/calibration.cc.o.d"
  "CMakeFiles/gl_workload.dir/container.cc.o"
  "CMakeFiles/gl_workload.dir/container.cc.o.d"
  "CMakeFiles/gl_workload.dir/msr_trace.cc.o"
  "CMakeFiles/gl_workload.dir/msr_trace.cc.o.d"
  "CMakeFiles/gl_workload.dir/scenarios.cc.o"
  "CMakeFiles/gl_workload.dir/scenarios.cc.o.d"
  "CMakeFiles/gl_workload.dir/traces.cc.o"
  "CMakeFiles/gl_workload.dir/traces.cc.o.d"
  "CMakeFiles/gl_workload.dir/workload_io.cc.o"
  "CMakeFiles/gl_workload.dir/workload_io.cc.o.d"
  "libgl_workload.a"
  "libgl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
