file(REMOVE_RECURSE
  "libgl_workload.a"
)
