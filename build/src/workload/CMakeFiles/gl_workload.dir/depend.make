# Empty dependencies file for gl_workload.
# This may be replaced when dependencies are built.
