# Empty dependencies file for gl_netsim.
# This may be replaced when dependencies are built.
