
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/flowsim.cc" "src/netsim/CMakeFiles/gl_netsim.dir/flowsim.cc.o" "gcc" "src/netsim/CMakeFiles/gl_netsim.dir/flowsim.cc.o.d"
  "/root/repo/src/netsim/traffic.cc" "src/netsim/CMakeFiles/gl_netsim.dir/traffic.cc.o" "gcc" "src/netsim/CMakeFiles/gl_netsim.dir/traffic.cc.o.d"
  "/root/repo/src/netsim/traffic_packing.cc" "src/netsim/CMakeFiles/gl_netsim.dir/traffic_packing.cc.o" "gcc" "src/netsim/CMakeFiles/gl_netsim.dir/traffic_packing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/gl_schedulers.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
