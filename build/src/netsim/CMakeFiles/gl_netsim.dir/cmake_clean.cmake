file(REMOVE_RECURSE
  "CMakeFiles/gl_netsim.dir/flowsim.cc.o"
  "CMakeFiles/gl_netsim.dir/flowsim.cc.o.d"
  "CMakeFiles/gl_netsim.dir/traffic.cc.o"
  "CMakeFiles/gl_netsim.dir/traffic.cc.o.d"
  "CMakeFiles/gl_netsim.dir/traffic_packing.cc.o"
  "CMakeFiles/gl_netsim.dir/traffic_packing.cc.o.d"
  "libgl_netsim.a"
  "libgl_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
