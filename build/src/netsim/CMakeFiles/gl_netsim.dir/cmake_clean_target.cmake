file(REMOVE_RECURSE
  "libgl_netsim.a"
)
