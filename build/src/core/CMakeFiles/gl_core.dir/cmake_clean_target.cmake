file(REMOVE_RECURSE
  "libgl_core.a"
)
