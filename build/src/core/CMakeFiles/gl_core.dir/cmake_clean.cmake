file(REMOVE_RECURSE
  "CMakeFiles/gl_core.dir/epoch_controller.cc.o"
  "CMakeFiles/gl_core.dir/epoch_controller.cc.o.d"
  "CMakeFiles/gl_core.dir/goldilocks.cc.o"
  "CMakeFiles/gl_core.dir/goldilocks.cc.o.d"
  "CMakeFiles/gl_core.dir/graph_builder.cc.o"
  "CMakeFiles/gl_core.dir/graph_builder.cc.o.d"
  "CMakeFiles/gl_core.dir/virtual_cluster.cc.o"
  "CMakeFiles/gl_core.dir/virtual_cluster.cc.o.d"
  "libgl_core.a"
  "libgl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
