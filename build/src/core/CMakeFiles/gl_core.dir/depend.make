# Empty dependencies file for gl_core.
# This may be replaced when dependencies are built.
