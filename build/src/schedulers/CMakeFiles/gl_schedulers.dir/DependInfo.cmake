
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedulers/borg.cc" "src/schedulers/CMakeFiles/gl_schedulers.dir/borg.cc.o" "gcc" "src/schedulers/CMakeFiles/gl_schedulers.dir/borg.cc.o.d"
  "/root/repo/src/schedulers/e_pvm.cc" "src/schedulers/CMakeFiles/gl_schedulers.dir/e_pvm.cc.o" "gcc" "src/schedulers/CMakeFiles/gl_schedulers.dir/e_pvm.cc.o.d"
  "/root/repo/src/schedulers/mpp.cc" "src/schedulers/CMakeFiles/gl_schedulers.dir/mpp.cc.o" "gcc" "src/schedulers/CMakeFiles/gl_schedulers.dir/mpp.cc.o.d"
  "/root/repo/src/schedulers/placement.cc" "src/schedulers/CMakeFiles/gl_schedulers.dir/placement.cc.o" "gcc" "src/schedulers/CMakeFiles/gl_schedulers.dir/placement.cc.o.d"
  "/root/repo/src/schedulers/random_scheduler.cc" "src/schedulers/CMakeFiles/gl_schedulers.dir/random_scheduler.cc.o" "gcc" "src/schedulers/CMakeFiles/gl_schedulers.dir/random_scheduler.cc.o.d"
  "/root/repo/src/schedulers/rc_informed.cc" "src/schedulers/CMakeFiles/gl_schedulers.dir/rc_informed.cc.o" "gcc" "src/schedulers/CMakeFiles/gl_schedulers.dir/rc_informed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gl_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
