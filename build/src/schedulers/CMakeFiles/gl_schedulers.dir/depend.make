# Empty dependencies file for gl_schedulers.
# This may be replaced when dependencies are built.
