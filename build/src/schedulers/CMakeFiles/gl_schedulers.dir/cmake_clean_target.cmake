file(REMOVE_RECURSE
  "libgl_schedulers.a"
)
