file(REMOVE_RECURSE
  "CMakeFiles/gl_schedulers.dir/borg.cc.o"
  "CMakeFiles/gl_schedulers.dir/borg.cc.o.d"
  "CMakeFiles/gl_schedulers.dir/e_pvm.cc.o"
  "CMakeFiles/gl_schedulers.dir/e_pvm.cc.o.d"
  "CMakeFiles/gl_schedulers.dir/mpp.cc.o"
  "CMakeFiles/gl_schedulers.dir/mpp.cc.o.d"
  "CMakeFiles/gl_schedulers.dir/placement.cc.o"
  "CMakeFiles/gl_schedulers.dir/placement.cc.o.d"
  "CMakeFiles/gl_schedulers.dir/random_scheduler.cc.o"
  "CMakeFiles/gl_schedulers.dir/random_scheduler.cc.o.d"
  "CMakeFiles/gl_schedulers.dir/rc_informed.cc.o"
  "CMakeFiles/gl_schedulers.dir/rc_informed.cc.o.d"
  "libgl_schedulers.a"
  "libgl_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
