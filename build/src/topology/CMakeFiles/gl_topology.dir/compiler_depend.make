# Empty compiler generated dependencies file for gl_topology.
# This may be replaced when dependencies are built.
