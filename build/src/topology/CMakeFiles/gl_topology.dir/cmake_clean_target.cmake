file(REMOVE_RECURSE
  "libgl_topology.a"
)
