file(REMOVE_RECURSE
  "CMakeFiles/gl_topology.dir/datacenters.cc.o"
  "CMakeFiles/gl_topology.dir/datacenters.cc.o.d"
  "CMakeFiles/gl_topology.dir/topology.cc.o"
  "CMakeFiles/gl_topology.dir/topology.cc.o.d"
  "libgl_topology.a"
  "libgl_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gl_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
