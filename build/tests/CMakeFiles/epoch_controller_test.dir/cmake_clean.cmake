file(REMOVE_RECURSE
  "CMakeFiles/epoch_controller_test.dir/epoch_controller_test.cc.o"
  "CMakeFiles/epoch_controller_test.dir/epoch_controller_test.cc.o.d"
  "epoch_controller_test"
  "epoch_controller_test.pdb"
  "epoch_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
