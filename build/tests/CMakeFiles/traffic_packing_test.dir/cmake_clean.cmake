file(REMOVE_RECURSE
  "CMakeFiles/traffic_packing_test.dir/traffic_packing_test.cc.o"
  "CMakeFiles/traffic_packing_test.dir/traffic_packing_test.cc.o.d"
  "traffic_packing_test"
  "traffic_packing_test.pdb"
  "traffic_packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
