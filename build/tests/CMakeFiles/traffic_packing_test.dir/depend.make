# Empty dependencies file for traffic_packing_test.
# This may be replaced when dependencies are built.
