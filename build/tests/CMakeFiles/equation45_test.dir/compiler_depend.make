# Empty compiler generated dependencies file for equation45_test.
# This may be replaced when dependencies are built.
