file(REMOVE_RECURSE
  "CMakeFiles/equation45_test.dir/equation45_test.cc.o"
  "CMakeFiles/equation45_test.dir/equation45_test.cc.o.d"
  "equation45_test"
  "equation45_test.pdb"
  "equation45_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equation45_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
