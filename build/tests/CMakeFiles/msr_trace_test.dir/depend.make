# Empty dependencies file for msr_trace_test.
# This may be replaced when dependencies are built.
