file(REMOVE_RECURSE
  "CMakeFiles/msr_trace_test.dir/msr_trace_test.cc.o"
  "CMakeFiles/msr_trace_test.dir/msr_trace_test.cc.o.d"
  "msr_trace_test"
  "msr_trace_test.pdb"
  "msr_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msr_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
