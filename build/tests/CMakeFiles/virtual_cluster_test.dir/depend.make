# Empty dependencies file for virtual_cluster_test.
# This may be replaced when dependencies are built.
