# Empty dependencies file for epvm_oc_test.
# This may be replaced when dependencies are built.
