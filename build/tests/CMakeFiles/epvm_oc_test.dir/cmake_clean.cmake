file(REMOVE_RECURSE
  "CMakeFiles/epvm_oc_test.dir/epvm_oc_test.cc.o"
  "CMakeFiles/epvm_oc_test.dir/epvm_oc_test.cc.o.d"
  "epvm_oc_test"
  "epvm_oc_test.pdb"
  "epvm_oc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvm_oc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
