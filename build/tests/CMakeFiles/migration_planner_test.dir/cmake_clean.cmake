file(REMOVE_RECURSE
  "CMakeFiles/migration_planner_test.dir/migration_planner_test.cc.o"
  "CMakeFiles/migration_planner_test.dir/migration_planner_test.cc.o.d"
  "migration_planner_test"
  "migration_planner_test.pdb"
  "migration_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
