file(REMOVE_RECURSE
  "CMakeFiles/goldilocks_test.dir/goldilocks_test.cc.o"
  "CMakeFiles/goldilocks_test.dir/goldilocks_test.cc.o.d"
  "goldilocks_test"
  "goldilocks_test.pdb"
  "goldilocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goldilocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
