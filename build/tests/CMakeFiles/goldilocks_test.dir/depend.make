# Empty dependencies file for goldilocks_test.
# This may be replaced when dependencies are built.
