file(REMOVE_RECURSE
  "CMakeFiles/dc_power_test.dir/dc_power_test.cc.o"
  "CMakeFiles/dc_power_test.dir/dc_power_test.cc.o.d"
  "dc_power_test"
  "dc_power_test.pdb"
  "dc_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
