# Empty compiler generated dependencies file for schedulers_test.
# This may be replaced when dependencies are built.
