# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/dc_power_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/msr_trace_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_packing_test[1]_include.cmake")
include("/root/repo/build/tests/schedulers_test[1]_include.cmake")
include("/root/repo/build/tests/epvm_oc_test[1]_include.cmake")
include("/root/repo/build/tests/goldilocks_test[1]_include.cmake")
include("/root/repo/build/tests/epoch_controller_test[1]_include.cmake")
include("/root/repo/build/tests/virtual_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/equation45_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/migration_planner_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
