# Empty compiler generated dependencies file for twitter_caching.
# This may be replaced when dependencies are built.
