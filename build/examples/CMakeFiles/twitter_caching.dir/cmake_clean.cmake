file(REMOVE_RECURSE
  "CMakeFiles/twitter_caching.dir/twitter_caching.cpp.o"
  "CMakeFiles/twitter_caching.dir/twitter_caching.cpp.o.d"
  "twitter_caching"
  "twitter_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twitter_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
