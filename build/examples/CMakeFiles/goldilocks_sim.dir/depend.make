# Empty dependencies file for goldilocks_sim.
# This may be replaced when dependencies are built.
