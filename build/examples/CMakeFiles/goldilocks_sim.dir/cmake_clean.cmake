file(REMOVE_RECURSE
  "CMakeFiles/goldilocks_sim.dir/goldilocks_sim.cpp.o"
  "CMakeFiles/goldilocks_sim.dir/goldilocks_sim.cpp.o.d"
  "goldilocks_sim"
  "goldilocks_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goldilocks_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
