file(REMOVE_RECURSE
  "CMakeFiles/asymmetric_datacenter.dir/asymmetric_datacenter.cpp.o"
  "CMakeFiles/asymmetric_datacenter.dir/asymmetric_datacenter.cpp.o.d"
  "asymmetric_datacenter"
  "asymmetric_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asymmetric_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
