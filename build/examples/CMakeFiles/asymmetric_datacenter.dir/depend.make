# Empty dependencies file for asymmetric_datacenter.
# This may be replaced when dependencies are built.
