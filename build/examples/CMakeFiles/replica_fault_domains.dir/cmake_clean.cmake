file(REMOVE_RECURSE
  "CMakeFiles/replica_fault_domains.dir/replica_fault_domains.cpp.o"
  "CMakeFiles/replica_fault_domains.dir/replica_fault_domains.cpp.o.d"
  "replica_fault_domains"
  "replica_fault_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_fault_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
