# Empty compiler generated dependencies file for replica_fault_domains.
# This may be replaced when dependencies are built.
