file(REMOVE_RECURSE
  "CMakeFiles/epoch_replay.dir/epoch_replay.cpp.o"
  "CMakeFiles/epoch_replay.dir/epoch_replay.cpp.o.d"
  "epoch_replay"
  "epoch_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
