# Empty compiler generated dependencies file for epoch_replay.
# This may be replaced when dependencies are built.
