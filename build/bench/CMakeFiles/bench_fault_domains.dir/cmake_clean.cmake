file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_domains.dir/bench_fault_domains.cpp.o"
  "CMakeFiles/bench_fault_domains.dir/bench_fault_domains.cpp.o.d"
  "bench_fault_domains"
  "bench_fault_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
