# Empty compiler generated dependencies file for bench_fault_domains.
# This may be replaced when dependencies are built.
