# Empty dependencies file for bench_fig10_azure_mix.
# This may be replaced when dependencies are built.
