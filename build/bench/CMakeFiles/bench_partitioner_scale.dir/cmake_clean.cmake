file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioner_scale.dir/bench_partitioner_scale.cpp.o"
  "CMakeFiles/bench_partitioner_scale.dir/bench_partitioner_scale.cpp.o.d"
  "bench_partitioner_scale"
  "bench_partitioner_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioner_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
