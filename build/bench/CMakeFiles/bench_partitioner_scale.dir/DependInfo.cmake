
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_partitioner_scale.cpp" "bench/CMakeFiles/bench_partitioner_scale.dir/bench_partitioner_scale.cpp.o" "gcc" "bench/CMakeFiles/bench_partitioner_scale.dir/bench_partitioner_scale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/gl_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/gl_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/gl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
