# Empty compiler generated dependencies file for bench_fig3_dc_breakdown.
# This may be replaced when dependencies are built.
