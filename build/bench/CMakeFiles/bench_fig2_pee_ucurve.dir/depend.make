# Empty dependencies file for bench_fig2_pee_ucurve.
# This may be replaced when dependencies are built.
