file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_pee_ucurve.dir/bench_fig2_pee_ucurve.cpp.o"
  "CMakeFiles/bench_fig2_pee_ucurve.dir/bench_fig2_pee_ucurve.cpp.o.d"
  "bench_fig2_pee_ucurve"
  "bench_fig2_pee_ucurve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_pee_ucurve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
