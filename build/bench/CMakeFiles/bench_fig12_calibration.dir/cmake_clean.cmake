file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_calibration.dir/bench_fig12_calibration.cpp.o"
  "CMakeFiles/bench_fig12_calibration.dir/bench_fig12_calibration.cpp.o.d"
  "bench_fig12_calibration"
  "bench_fig12_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
