file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_averages.dir/bench_fig11_averages.cpp.o"
  "CMakeFiles/bench_fig11_averages.dir/bench_fig11_averages.cpp.o.d"
  "bench_fig11_averages"
  "bench_fig11_averages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_averages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
