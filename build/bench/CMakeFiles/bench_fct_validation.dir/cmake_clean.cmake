file(REMOVE_RECURSE
  "CMakeFiles/bench_fct_validation.dir/bench_fct_validation.cpp.o"
  "CMakeFiles/bench_fct_validation.dir/bench_fct_validation.cpp.o.d"
  "bench_fct_validation"
  "bench_fct_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fct_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
