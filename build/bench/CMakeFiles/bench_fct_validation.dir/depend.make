# Empty dependencies file for bench_fct_validation.
# This may be replaced when dependencies are built.
