# Empty dependencies file for bench_asymmetric.
# This may be replaced when dependencies are built.
