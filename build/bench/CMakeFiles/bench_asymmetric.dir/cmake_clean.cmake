file(REMOVE_RECURSE
  "CMakeFiles/bench_asymmetric.dir/bench_asymmetric.cpp.o"
  "CMakeFiles/bench_asymmetric.dir/bench_asymmetric.cpp.o.d"
  "bench_asymmetric"
  "bench_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
