file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_wiki_testbed.dir/bench_fig9_wiki_testbed.cpp.o"
  "CMakeFiles/bench_fig9_wiki_testbed.dir/bench_fig9_wiki_testbed.cpp.o.d"
  "bench_fig9_wiki_testbed"
  "bench_fig9_wiki_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_wiki_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
