# Empty compiler generated dependencies file for bench_fig9_wiki_testbed.
# This may be replaced when dependencies are built.
